// Algebraic invariants of the relationship definitions, checked on random
// corpora: these hold by Def. 2-4 and must hold for every implementation.
//
//  * dimensional containment (root-padded, ancestor-or-self on all dims) is
//    a partial order: reflexive, transitive, antisymmetric up to coordinate
//    equality;
//  * complementarity is an equivalence relation on padded coordinates:
//    symmetric, transitive, and exactly the mutual-containment pairs;
//  * full containment (with the measure gate) is contained in dimensional
//    containment and is transitive *within a fixed shared measure*;
//  * partial degree is monotone: full containment implies degree 1 on every
//    dimension; the reported degree equals the per-dimension count / |P|;
//  * the skyline is an antichain under strict dominance.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/baseline.h"
#include "core/occurrence_matrix.h"
#include "core/skyline.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRandomCorpus;

class InvariantTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void Load(uint64_t seed) {
    corpus_ = MakeRandomCorpus(seed, 50);
    obs_ = corpus_.observations.get();
    om_ = std::make_unique<OccurrenceMatrix>(*obs_);
  }

  // Dimensional (measure-free) containment via the occurrence matrix.
  bool DimContains(qb::ObsId a, qb::ObsId b) const {
    return om_->ContainsAll(a, b);
  }

  bool SameCoordinates(qb::ObsId a, qb::ObsId b) const {
    for (qb::DimId d = 0; d < obs_->space().num_dimensions(); ++d) {
      if (obs_->ValueOrRoot(a, d) != obs_->ValueOrRoot(b, d)) return false;
    }
    return true;
  }

  qb::Corpus corpus_;
  const qb::ObservationSet* obs_ = nullptr;
  std::unique_ptr<OccurrenceMatrix> om_;
};

TEST_P(InvariantTest, DimensionalContainmentIsAPartialOrder) {
  Load(GetParam());
  const std::size_t n = obs_->size();
  // Reflexive.
  for (qb::ObsId a = 0; a < n; ++a) {
    EXPECT_TRUE(DimContains(a, a));
  }
  // Antisymmetric up to coordinate equality + transitive.
  for (qb::ObsId a = 0; a < n; ++a) {
    for (qb::ObsId b = 0; b < n; ++b) {
      if (DimContains(a, b) && DimContains(b, a)) {
        EXPECT_TRUE(SameCoordinates(a, b)) << a << "," << b;
      }
      if (!DimContains(a, b)) continue;
      for (qb::ObsId c = 0; c < n; ++c) {
        if (DimContains(b, c)) {
          EXPECT_TRUE(DimContains(a, c))
              << "transitivity broken: " << a << ">" << b << ">" << c;
        }
      }
    }
  }
}

TEST_P(InvariantTest, ComplementarityIsAnEquivalenceOnCoordinates) {
  Load(GetParam() * 3 + 1);
  CollectingSink sink;
  BaselineOptions options;
  options.selector = RelationshipSelector::ComplOnly();
  ASSERT_TRUE(RunBaseline(*obs_, *om_, options, &sink).ok());
  std::set<std::pair<qb::ObsId, qb::ObsId>> compl_pairs(
      sink.complementary().begin(), sink.complementary().end());

  auto has = [&](qb::ObsId a, qb::ObsId b) {
    return compl_pairs.count({std::min(a, b), std::max(a, b)}) != 0;
  };
  const std::size_t n = obs_->size();
  for (qb::ObsId a = 0; a < n; ++a) {
    for (qb::ObsId b = a + 1; b < n; ++b) {
      // Compl(a,b) <=> identical padded coordinates.
      EXPECT_EQ(has(a, b), SameCoordinates(a, b)) << a << "," << b;
      // Transitivity through any witness c.
      if (!has(a, b)) continue;
      for (qb::ObsId c = b + 1; c < n; ++c) {
        if (has(b, c)) {
          EXPECT_TRUE(has(a, c));
        }
      }
    }
  }
}

TEST_P(InvariantTest, FullContainmentRespectsGateAndTransitivityPerMeasure) {
  Load(GetParam() * 7 + 5);
  CollectingSink sink;
  BaselineOptions options;
  options.selector = RelationshipSelector::FullOnly();
  ASSERT_TRUE(RunBaseline(*obs_, *om_, options, &sink).ok());
  std::set<std::pair<qb::ObsId, qb::ObsId>> full(sink.full().begin(),
                                                 sink.full().end());
  for (const auto& [a, b] : full) {
    EXPECT_TRUE(DimContains(a, b));
    EXPECT_TRUE(obs_->SharesMeasure(a, b));
  }
  // Transitivity restricted to a common measure across all three.
  for (const auto& [a, b] : full) {
    for (const auto& [b2, c] : full) {
      if (b2 != b || c == a) continue;
      const uint64_t common = obs_->obs(a).measure_mask &
                              obs_->obs(b).measure_mask &
                              obs_->obs(c).measure_mask;
      if (common != 0) {
        EXPECT_TRUE(full.count({a, c}))
            << "per-measure transitivity broken: " << a << ">" << b << ">"
            << c;
      }
    }
  }
}

TEST_P(InvariantTest, PartialDegreeEqualsDimensionCount) {
  Load(GetParam() * 11 + 3);
  CollectingSink sink;
  BaselineOptions options;
  options.selector.partial_dimension_map = true;
  ASSERT_TRUE(RunBaseline(*obs_, *om_, options, &sink).ok());
  const std::size_t k = obs_->space().num_dimensions();
  for (const auto& p : sink.partial()) {
    // Recount dimensions directly.
    std::size_t count = 0;
    for (qb::DimId d = 0; d < k; ++d) {
      if (om_->Contains(p.a, p.b, d)) ++count;
    }
    EXPECT_NEAR(p.degree, static_cast<double>(count) / static_cast<double>(k),
                1e-12);
    EXPECT_GT(count, 0u);
    EXPECT_LT(count, k);
    // The dimension map has exactly `count` bits and matches Contains.
    std::size_t mask_bits = 0;
    for (qb::DimId d = 0; d < k; ++d) {
      const bool in_mask = (p.dim_mask >> d) & 1;
      EXPECT_EQ(in_mask, om_->Contains(p.a, p.b, d));
      mask_bits += in_mask ? 1 : 0;
    }
    EXPECT_EQ(mask_bits, count);
  }
}

TEST_P(InvariantTest, SkylineIsAnAntichain) {
  Load(GetParam() * 13 + 11);
  const Lattice lattice(*obs_);
  const auto skyline = ComputeSkyline(*obs_, lattice);
  // No skyline member strictly dominates another with a shared measure.
  for (qb::ObsId a : skyline) {
    for (qb::ObsId b : skyline) {
      if (a == b || !obs_->SharesMeasure(a, b)) continue;
      const bool dominates = DimContains(a, b) && !SameCoordinates(a, b);
      EXPECT_FALSE(dominates) << a << " dominates skyline member " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace core
}  // namespace rdfcube
