// rdfcube_lint unit tests: each check class is seeded into a temp tree and
// must fire exactly where planted; a clean tree and lint:allow suppressions
// must pass. This is the proof that the checker actually guards the
// CLAUDE.md invariants rather than pattern-matching nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/lint_checks.h"

namespace rdfcube {
namespace lint {
namespace {

namespace fs = std::filesystem;

class LintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::path(::testing::TempDir()) /
            ("lint_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  // Writes `content` at root/rel, creating parent directories.
  void WriteFile(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    out << content;
  }

  // A minimal clean tree: one documented public header, listed in the
  // umbrella. Tests add their seeded violation on top.
  void WriteCleanTree() {
    WriteFile("src/core/engine.h",
              "/// \\brief A documented class.\n"
              "class Engine {\n"
              "};\n");
    WriteFile("src/rdfcube/rdfcube.h", "#include \"core/engine.h\"\n");
  }

  std::vector<std::string> ChecksFired() {
    std::vector<std::string> names;
    for (const Violation& v : RunAllChecks(root_.string())) {
      names.push_back(v.check);
    }
    return names;
  }

  bool Fired(const std::string& check) {
    const auto names = ChecksFired();
    return std::find(names.begin(), names.end(), check) != names.end();
  }

  fs::path root_;
};

TEST_F(LintTest, CleanTreePasses) {
  WriteCleanTree();
  EXPECT_TRUE(RunAllChecks(root_.string()).empty());
}

TEST_F(LintTest, MissingSrcDirectoryIsItselfAViolation) {
  fs::create_directories(root_);
  EXPECT_FALSE(RunAllChecks(root_.string()).empty());
}

TEST_F(LintTest, ThrowInCoreFires) {
  WriteCleanTree();
  WriteFile("src/core/bad.cc",
            "void F() {\n"
            "  throw 42;\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "no-throw");
  EXPECT_EQ(violations[0].file, "src/core/bad.cc");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, ThrowInUtilFires) {
  WriteCleanTree();
  WriteFile("src/util/bad.h", "inline void F() { throw 1; }\n");
  EXPECT_TRUE(Fired("no-throw"));
}

TEST_F(LintTest, ThrowOutsideHotPathModulesDoesNotFire) {
  WriteCleanTree();
  // The no-exceptions rule covers src/core and src/util only.
  WriteFile("src/qb/elsewhere.cc", "void F() { throw 42; }\n");
  EXPECT_FALSE(Fired("no-throw"));
}

TEST_F(LintTest, ThrowInCommentDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/core/ok.cc", "// this would throw in other designs\n");
  EXPECT_FALSE(Fired("no-throw"));
}

TEST_F(LintTest, ThrowInStringLiteralDoesNotFire) {
  // The tokenizer blanks literal contents in the code view; the old
  // line-regex core fired here.
  WriteCleanTree();
  WriteFile("src/core/ok.cc",
            "void F() { Log(\"would throw on bad input\"); }\n");
  EXPECT_FALSE(Fired("no-throw"));
}

TEST_F(LintTest, ThrowInBlockCommentSpanningLinesDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/core/ok.cc",
            "/* alternatives considered:\n"
            "   throw std::runtime_error(...)\n"
            "*/\n"
            "void F();\n");
  EXPECT_FALSE(Fired("no-throw"));
}

TEST_F(LintTest, ThrowInBaseFires) {
  WriteCleanTree();
  WriteFile("src/base/bad.h", "// rdfcube:internal\ninline void F() { throw 1; }\n");
  EXPECT_TRUE(Fired("no-throw"));
}

TEST_F(LintTest, ThrowWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/core/ok.cc",
            "void F() { throw 42; }  // lint:allow(no-throw)\n");
  EXPECT_FALSE(Fired("no-throw"));
}

TEST_F(LintTest, GenericLambdaInSparqlFires) {
  WriteCleanTree();
  WriteFile("src/sparql/bad.cc",
            "auto eval = [&](auto&& self, int n) { return self(self, n); };\n");
  EXPECT_TRUE(Fired("std-function-callback"));
}

TEST_F(LintTest, GenericLambdaInRulesFires) {
  WriteCleanTree();
  WriteFile("src/rules/bad.cc", "auto f = [](auto x) { return x; };\n");
  EXPECT_TRUE(Fired("std-function-callback"));
}

TEST_F(LintTest, PlainLambdaInSparqlDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/sparql/ok.cc", "auto f = [](int x) { return x; };\n");
  EXPECT_FALSE(Fired("std-function-callback"));
}

TEST_F(LintTest, HeaderMissingFromUmbrellaFires) {
  WriteCleanTree();
  WriteFile("src/qb/orphan.h", "/// \\brief Doc.\nclass Orphan {\n};\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "umbrella-sync");
  EXPECT_EQ(violations[0].file, "src/qb/orphan.h");
}

TEST_F(LintTest, InternalMarkerExemptsHeaderFromUmbrella) {
  WriteCleanTree();
  WriteFile("src/qb/wire.h",
            "// rdfcube:internal — wire helpers, not public API.\n"
            "/// \\brief Doc.\nclass Wire {\n};\n");
  EXPECT_FALSE(Fired("umbrella-sync"));
}

TEST_F(LintTest, MissingUmbrellaHeaderFires) {
  WriteFile("src/core/engine.h", "/// \\brief Doc.\nclass Engine {\n};\n");
  EXPECT_TRUE(Fired("umbrella-sync"));
}

TEST_F(LintTest, UndocumentedPublicClassFires) {
  WriteCleanTree();
  WriteFile("src/core/nodoc.h", "class NoDoc {\n};\n");
  WriteFile("src/rdfcube/rdfcube.h",
            "#include \"core/engine.h\"\n"
            "#include \"core/nodoc.h\"\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "doxygen-public");
  EXPECT_EQ(violations[0].file, "src/core/nodoc.h");
  EXPECT_EQ(violations[0].line, 1u);
}

TEST_F(LintTest, DocumentedTemplateClassDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/util/tmpl.h",
            "/// \\brief Documented template; the /// sits above the head.\n"
            "template <typename T>\n"
            "class [[nodiscard]] Holder {\n"
            "};\n");
  WriteFile("src/rdfcube/rdfcube.h",
            "#include \"core/engine.h\"\n"
            "#include \"util/tmpl.h\"\n");
  EXPECT_FALSE(Fired("doxygen-public"));
}

TEST_F(LintTest, ForwardDeclarationDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/core/fwd.h", "class Forward;\n");
  WriteFile("src/rdfcube/rdfcube.h",
            "#include \"core/engine.h\"\n"
            "#include \"core/fwd.h\"\n");
  EXPECT_FALSE(Fired("doxygen-public"));
}

TEST_F(LintTest, UncheckedStodFires) {
  WriteCleanTree();
  WriteFile("src/qb/parse.cc",
            "double F(const std::string& s) { return std::stod(s); }\n");
  EXPECT_TRUE(Fired("checked-parse"));
}

TEST_F(LintTest, UncheckedAtoiInToolsFires) {
  WriteCleanTree();
  WriteFile("tools/cli.cpp", "int F(const char* s) { return atoi(s); }\n");
  EXPECT_TRUE(Fired("checked-parse"));
}

TEST_F(LintTest, CheckedParseHelpersDoNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/parse.cc",
            "Result<double> F(std::string_view s) { return ParseDouble(s); }\n");
  EXPECT_FALSE(Fired("checked-parse"));
}

TEST_F(LintTest, BareStopwatchInBenchFires) {
  WriteCleanTree();
  WriteFile("bench/bench_fig9_thing.cc",
            "void BM_X() {\n"
            "  Stopwatch watch;\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "bare-stopwatch");
  EXPECT_EQ(violations[0].file, "bench/bench_fig9_thing.cc");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, StopwatchInBenchUtilDoesNotFire) {
  WriteCleanTree();
  // bench_util.{h,cc} implement the harness; the raw clock is allowed there.
  WriteFile("bench/bench_util.cc", "Stopwatch harness_clock;\n");
  WriteFile("bench/bench_util.h", "extern Stopwatch harness_clock;\n");
  EXPECT_FALSE(Fired("bare-stopwatch"));
}

TEST_F(LintTest, StopwatchOutsideBenchDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/timing.cc", "Stopwatch watch;\n");
  EXPECT_FALSE(Fired("bare-stopwatch"));
}

TEST_F(LintTest, BareStopwatchWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("bench/bench_fig9_thing.cc",
            "Stopwatch watch;  // lint:allow(bare-stopwatch)\n");
  EXPECT_FALSE(Fired("bare-stopwatch"));
}

TEST_F(LintTest, BareMutexMemberFires) {
  WriteCleanTree();
  WriteFile("src/qb/locked.cc",
            "class Cache {\n"
            "  mutable std::mutex mu_;\n"
            "};\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "lock-annotation");
  EXPECT_EQ(violations[0].file, "src/qb/locked.cc");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, BareConditionVariableFires) {
  WriteCleanTree();
  WriteFile("src/qb/locked.cc", "std::condition_variable cv_;\n");
  EXPECT_TRUE(Fired("lock-annotation"));
}

TEST_F(LintTest, AnnotatedCondvarDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/locked.cc",
            "std::condition_variable cv_ RDFCUBE_CONDVAR_PAIRED_WITH(mu_);\n");
  EXPECT_FALSE(Fired("lock-annotation"));
}

TEST_F(LintTest, UniqueLockTemplateArgumentDoesNotFire) {
  WriteCleanTree();
  // std::mutex as a template argument is a use, not an unannotated member.
  WriteFile("src/qb/locked.cc", "std::unique_lock<std::mutex> lock_;\n");
  EXPECT_FALSE(Fired("lock-annotation"));
}

TEST_F(LintTest, BareMutexWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/locked.cc",
            "std::mutex mu_;  // lint:allow(lock-annotation)\n");
  EXPECT_FALSE(Fired("lock-annotation"));
}

TEST_F(LintTest, ObsLocalVariableFires) {
  WriteCleanTree();
  WriteFile("src/qb/shadow.cc",
            "void F(const Corpus& c) {\n"
            "  const ObservationSet& obs = c.observations();\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "obs-shadowing");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, ObsFunctionParameterDoesNotFire) {
  WriteCleanTree();
  // Parameters named obs are the established call-signature style; bodies
  // use the obx namespace alias instead.
  WriteFile("src/qb/shadow.cc",
            "void F(const ObservationSet& obs, int n);\n");
  EXPECT_FALSE(Fired("obs-shadowing"));
}

TEST_F(LintTest, ObsNamespaceAliasDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/shadow.cc", "namespace obx = ::rdfcube::obs;\n");
  EXPECT_FALSE(Fired("obs-shadowing"));
}

TEST_F(LintTest, ObsLocalWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/shadow.cc",
            "auto obs = Load();  // lint:allow(obs-shadowing)\n");
  EXPECT_FALSE(Fired("obs-shadowing"));
}

TEST_F(LintTest, OffSchemeMetricNameFires) {
  WriteCleanTree();
  WriteFile("src/qb/metric.cc",
            "static obs::Counter& c = obs::DefaultCounter(\"loads\", \"n\");\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "metric-name");
  EXPECT_EQ(violations[0].line, 1u);
}

TEST_F(LintTest, SchemeConformingMetricNameDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/metric.cc",
            "static obs::Counter& c =\n"
            "    obs::DefaultCounter(\"rdfcube_qb_loads_total\", \"n\");\n");
  EXPECT_FALSE(Fired("metric-name"));
}

TEST_F(LintTest, WrappedCallLiteralOnNextLineIsChecked) {
  WriteCleanTree();
  // The function-local static idiom often wraps after the open paren; the
  // literal on the continuation line must still be validated.
  WriteFile("src/qb/metric.cc",
            "static obs::Counter& c = obs::DefaultCounter(\n"
            "    \"qb_loads\", \"n\");\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "metric-name");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, MetricNamePassedAsVariableIsSkipped) {
  WriteCleanTree();
  // Registry pass-throughs forward a computed name; nothing checkable.
  WriteFile("src/qb/metric.cc",
            "Counter& F(const std::string& name) {\n"
            "  return DefaultCounter(name, kHelp);\n"
            "}\n");
  EXPECT_FALSE(Fired("metric-name"));
}

TEST_F(LintTest, OffSchemeMetricNameWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/metric.cc",
            "auto& c = obs::DefaultCounter(\"legacy\", \"n\");"
            "  // lint:allow(metric-name)\n");
  EXPECT_FALSE(Fired("metric-name"));
}

TEST_F(LintTest, RawStderrInSrcFires) {
  WriteCleanTree();
  WriteFile("src/qb/diag.cc",
            "void F() {\n"
            "  fprintf(stderr, \"boom\\n\");\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "no-raw-stderr");
  EXPECT_EQ(violations[0].file, "src/qb/diag.cc");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, StdCerrInSrcFires) {
  WriteCleanTree();
  WriteFile("src/qb/diag.cc", "void F() { std::cerr << \"boom\"; }\n");
  EXPECT_TRUE(Fired("no-raw-stderr"));
}

TEST_F(LintTest, StderrOnAContinuationLineFires) {
  // Multi-line fputs calls put the stream argument alone on a later line;
  // the token match must still catch it.
  WriteCleanTree();
  WriteFile("src/qb/diag.cc",
            "void F() {\n"
            "  std::fputs(\n"
            "      \"long usage text\\n\",\n"
            "      stderr);\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "no-raw-stderr");
  EXPECT_EQ(violations[0].line, 4u);
}

TEST_F(LintTest, RawStderrInServerdFires) {
  WriteCleanTree();
  WriteFile("tools/rdfcube_serverd.cc",
            "int main() { fprintf(stderr, \"x\\n\"); }\n");
  EXPECT_TRUE(Fired("no-raw-stderr"));
}

TEST_F(LintTest, RawStderrInOtherToolsDoesNotFire) {
  // CLI tools print usage/errors to the terminal; only the daemon (whose
  // stderr is an operator log stream) is in scope.
  WriteCleanTree();
  WriteFile("tools/rdfcube_cli.cpp",
            "int main() { fprintf(stderr, \"usage\\n\"); }\n");
  EXPECT_FALSE(Fired("no-raw-stderr"));
}

TEST_F(LintTest, StderrInACommentOrStringDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/diag.cc",
            "// the default sink writes to stderr\n"
            "const char* kDoc = \"logs go to stderr\";\n");
  EXPECT_FALSE(Fired("no-raw-stderr"));
}

TEST_F(LintTest, RawStderrWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/diag.cc",
            "void F(const std::string& s) {\n"
            "  std::fputs(s.c_str(), stderr);  // lint:allow(no-raw-stderr)\n"
            "}\n");
  EXPECT_FALSE(Fired("no-raw-stderr"));
}

TEST_F(LintTest, UnguardedCallChainValueFires) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(const Dict& dict, int x) {\n"
            "  auto v = dict.Find(x).value();\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "checked-value");
  EXPECT_EQ(violations[0].file, "src/qb/cv.cc");
  EXPECT_EQ(violations[0].line, 2u);
}

TEST_F(LintTest, CallChainValueGuardedInSameStatementDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "int F(const Dict& d, int x) {\n"
            "  return d.Find(x).has_value() ? d.Find(x).value() : 0;\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, CallChainValueGuardedByEnclosingIfDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(const Dict& d, int x) {\n"
            "  if (d.Find(x).has_value()) {\n"
            "    Use(d.Find(x).value());\n"
            "  }\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, GuardInAnEarlierSiblingBlockDoesNotCount) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(const Dict& d, int x) {\n"
            "  if (d.Find(x).has_value()) {\n"
            "    Use(1);\n"
            "  }\n"
            "  Use(d.Find(x).value());\n"
            "}\n");
  EXPECT_TRUE(Fired("checked-value"));
}

TEST_F(LintTest, UnguardedDeclaredResultValueFires) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(std::string_view s) {\n"
            "  Result<double> r = ParseDouble(s);\n"
            "  Use(r.value());\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "checked-value");
  EXPECT_EQ(violations[0].line, 3u);
}

TEST_F(LintTest, GuardedDeclaredResultValueDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(std::string_view s) {\n"
            "  Result<double> r = ParseDouble(s);\n"
            "  if (!r.ok()) return;\n"
            "  Use(r.value());\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, ValueOnUndeclaredIdentifierIsNotTracked) {
  // Term::value() is a plain accessor: an identifier receiver with no
  // visible Result/optional declaration must not fire (dataflow-lite only
  // tracks explicitly-typed locals).
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "std::string F(const Term& t) {\n"
            "  return t.value();\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, AssignOrReturnMacroBodyDoesNotFire) {
  // The ASSIGN_OR_RETURN idiom guards inside a backslash-continued macro
  // body; the joined statement carries the tmp.ok() test.
  WriteCleanTree();
  WriteFile("src/util/macro.h",
            "// rdfcube:internal\n"
            "#define ASSIGN_IMPL(tmp, lhs, rexpr)      \\\n"
            "  Result<int> tmp = (rexpr);              \\\n"
            "  if (!tmp.ok()) return tmp.status();     \\\n"
            "  lhs = std::move(tmp).value()\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, UnguardedOptionalDereferenceFires) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(const Dict& d, int x) {\n"
            "  std::optional<int> id = d.Find(x);\n"
            "  Use(*id);\n"
            "}\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].check, "checked-value");
  EXPECT_EQ(violations[0].line, 3u);
}

TEST_F(LintTest, GuardedOptionalDereferenceDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(const Dict& d, int x) {\n"
            "  std::optional<int> id = d.Find(x);\n"
            "  if (!id.has_value()) return;\n"
            "  Use(*id);\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, BooleanTestOfOptionalCountsAsGuard) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "void F(const Dict& d, int x) {\n"
            "  std::optional<int> id = d.Find(x);\n"
            "  if (id) Use(*id);\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, SubscriptDereferenceIsNotTheIdentifier) {
  // `*points[i]` dereferences the element, not the vector; a Result return
  // type earlier in the signature must not make `points` tracked.
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "Result<Model> KMeans(const std::vector<const Vec*>& points) {\n"
            "  Use(*points[0]);\n"
            "  return Model{};\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, MultiplicationIsNotADereference) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "double F(std::optional<double> scale, double x) {\n"
            "  if (!scale.has_value()) return x;\n"
            "  double a = x * x;\n"
            "  return a * *scale;\n"
            "}\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, CheckedValueInStringLiteralDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "const char* kDoc = \"call Find(x).value() at your peril\";\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, CheckedValueWithSuppressionDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "auto v = d.Find(x).value();  "
            "// lint:allow(checked-value): seeded by loader, always present\n");
  EXPECT_FALSE(Fired("checked-value"));
}

TEST_F(LintTest, ValueOrIsNotValue) {
  WriteCleanTree();
  WriteFile("src/qb/cv.cc",
            "int F(const Dict& d, int x) { return d.Find(x).value_or(0); }\n");
  EXPECT_FALSE(Fired("checked-value"));
}

// --- call-graph checks (hot-path gate, DESIGN.md §5g) ------------------------

TEST_F(LintTest, HotPathAllocFiresOnAnAllocatingHelperInTheSameTu) {
  WriteCleanTree();
  WriteFile("src/core/hot.cc",
            "int Helper(std::vector<int>* v) {\n"
            "  v->push_back(1);\n"
            "  return 0;\n"
            "}\n"
            "RDFCUBE_HOT int Kernel(std::vector<int>* v) {\n"
            "  return Helper(v);\n"
            "}\n");
  EXPECT_TRUE(Fired("hot-path-alloc"));
}

TEST_F(LintTest, HotPathAllocFiresAcrossTranslationUnits) {
  // The allocating helper lives in another TU; the kernel's TU includes its
  // header, so the visibility-filtered linker connects them.
  WriteCleanTree();
  WriteFile("src/qb/format.h",
            "// rdfcube:internal\n"
            "int Escalate(int id);\n");
  WriteFile("src/qb/format.cc",
            "#include \"qb/format.h\"\n"
            "int Escalate(int id) { return std::to_string(id).size(); }\n");
  WriteFile("src/core/kernel.cc",
            "#include \"qb/format.h\"\n"
            "RDFCUBE_HOT int Kernel(int id) { return Escalate(id); }\n");
  EXPECT_TRUE(Fired("hot-path-alloc"));
}

TEST_F(LintTest, HotPathGateIgnoresDefinitionsOutsideTheIncludeClosure) {
  // Same helper, but the kernel's TU never includes its header: name-only
  // linking would flag this; TU-visibility filtering must not.
  WriteCleanTree();
  WriteFile("src/qb/format.cc",
            "int Escalate(int id) { return std::to_string(id).size(); }\n");
  WriteFile("src/core/kernel.cc",
            "RDFCUBE_HOT int Kernel(int id) { return Escalate(id); }\n");
  EXPECT_FALSE(Fired("hot-path-alloc"));
}

TEST_F(LintTest, ColdCalleeAbsorbsTheAllocation) {
  WriteCleanTree();
  WriteFile("src/core/hot.cc",
            "RDFCUBE_COLD int NotFound(int id) {\n"
            "  return std::to_string(id).size();\n"
            "}\n"
            "RDFCUBE_HOT int Kernel(int id) {\n"
            "  if (id < 0) return NotFound(id);\n"
            "  return id;\n"
            "}\n");
  EXPECT_FALSE(Fired("hot-path-alloc"));
}

TEST_F(LintTest, HotPathLockFires) {
  WriteCleanTree();
  WriteFile("src/server/worker.cc",
            "RDFCUBE_HOT int Evaluate() {\n"
            "  MutexLock guard(&mu_);\n"
            "  return 0;\n"
            "}\n");
  EXPECT_TRUE(Fired("hot-path-lock"));
}

TEST_F(LintTest, HotPathAllocSuppressedOnTheDefinitionLine) {
  WriteCleanTree();
  // The allow comment lives on the definition line (where the finding
  // anchors), like every other lint suppression.
  WriteFile("src/core/hot.cc",
            "RDFCUBE_HOT int Kernel(std::vector<int>* v) {  "
            "// lint:allow(hot-path-alloc): warm-up path, measured elsewhere\n"
            "  v->push_back(1);\n"
            "  return 0;\n"
            "}\n");
  EXPECT_FALSE(Fired("hot-path-alloc"));
}

TEST_F(LintTest, NoThrowTransitiveFiresOnReachingAThrowInACallee) {
  WriteCleanTree();
  WriteFile("src/core/thrower.h",
            "// rdfcube:internal\n"
            "inline void Boom() { throw 1; }  // lint:allow(no-throw)\n");
  WriteFile("src/core/caller.cc",
            "#include \"core/thrower.h\"\n"
            "void Call() { Boom(); }\n");
  EXPECT_TRUE(Fired("no-throw-transitive"));
  // The throw statement itself is suppressed; only the transitive reach
  // from the caller remains.
  EXPECT_FALSE(Fired("no-throw"));
}

TEST_F(LintTest, NoThrowTransitiveDoesNotDoubleReportTheThrowingFunction) {
  // The function owning the throw is the lexical no-throw check's finding;
  // the transitive check only fires when the throw lives in a callee.
  WriteCleanTree();
  WriteFile("src/core/bad.cc", "void F() { throw 42; }\n");
  EXPECT_TRUE(Fired("no-throw"));
  EXPECT_FALSE(Fired("no-throw-transitive"));
}

TEST_F(LintTest, UnboundedRecursionFiresInSparql) {
  WriteCleanTree();
  WriteFile("src/sparql/recur.cc",
            "int EvalLoop(int x) { return EvalLoop(x - 1); }\n");
  EXPECT_TRUE(Fired("unbounded-recursion"));
}

TEST_F(LintTest, MutualRecursionWithoutABoundFires) {
  // The ParseFilter <-> ParseGroup shape: a two-function cycle where
  // neither signature threads a bound.
  WriteCleanTree();
  WriteFile("src/rules/parse.cc",
            "int ParseB(int x);\n"
            "int ParseA(int x) { return ParseB(x); }\n"
            "int ParseB(int x) { return ParseA(x); }\n");
  EXPECT_TRUE(Fired("unbounded-recursion"));
}

TEST_F(LintTest, RecursionWithADepthParameterPasses) {
  WriteCleanTree();
  WriteFile("src/sparql/recur.cc",
            "int EvalLoop(int x, std::size_t depth) {\n"
            "  return EvalLoop(x - 1, depth + 1);\n"
            "}\n");
  EXPECT_FALSE(Fired("unbounded-recursion"));
}

TEST_F(LintTest, RecursionOutsideSparqlAndRulesDoesNotFire) {
  WriteCleanTree();
  WriteFile("src/core/recur.cc",
            "int Walk(int x) { return x == 0 ? 0 : Walk(x - 1); }\n");
  EXPECT_FALSE(Fired("unbounded-recursion"));
}

// --- taint gate (untrusted bytes vs sized sinks, DESIGN.md §5h) ---------------

TEST_F(LintTest, UntrustedSizeSinkFiresDownstreamOfADecoder) {
  WriteCleanTree();
  // The decoder itself clamps (so missing-limit-clamp stays quiet), but the
  // helper it feeds resizes on a tainted count with no comparison in sight.
  WriteFile("src/qb/decode.cc",
            "void Fill(const std::string& b, std::string* out) {\n"
            "  out->resize(n);\n"
            "}\n"
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
            "                                 std::string* out) {\n"
            "  if (b.size() > kMaxPayloadBytes) return;\n"
            "  Fill(b, out);\n"
            "}\n");
  EXPECT_TRUE(Fired("untrusted-size-sink"));
  EXPECT_FALSE(Fired("missing-limit-clamp"));
}

TEST_F(LintTest, UntrustedSizeSinkSilencedByALimitComparison) {
  WriteCleanTree();
  WriteFile("src/qb/decode.cc",
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
            "                                 std::string* out) {\n"
            "  if (b.size() > kMaxPayloadBytes) return;\n"
            "  out->resize(b.size());\n"
            "}\n");
  EXPECT_FALSE(Fired("untrusted-size-sink"));
  EXPECT_FALSE(Fired("missing-limit-clamp"));
}

TEST_F(LintTest, UncheckedSizeArithFiresOnMultipliedCounts) {
  WriteCleanTree();
  // The row-count clamp satisfies the sink check, but rows*cols can still
  // overflow before any comparison sees the product.
  WriteFile("src/qb/decode.cc",
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
            "                                 std::string* out) {\n"
            "  if (rows > kMaxRows) return;\n"
            "  out->resize(rows * cols);\n"
            "}\n");
  EXPECT_TRUE(Fired("unchecked-size-arith"));
  EXPECT_FALSE(Fired("untrusted-size-sink"));
}

TEST_F(LintTest, CheckedMulSilencesUncheckedSizeArith) {
  WriteCleanTree();
  WriteFile("src/qb/decode.cc",
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
            "                                 std::string* out) {\n"
            "  const auto bytes = util::CheckedMul<uint64_t>(rows, cols);\n"
            "  if (!bytes.ok() || *bytes > kMaxBytes) return;\n"
            "  out->resize(rows * cols);\n"
            "}\n");
  EXPECT_FALSE(Fired("unchecked-size-arith"));
  EXPECT_FALSE(Fired("untrusted-size-sink"));
}

TEST_F(LintTest, MissingLimitClampFiresOnAClamplessDecoder) {
  WriteCleanTree();
  WriteFile("src/qb/decode.cc",
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b) {\n"
            "  Dispatch(b);\n"
            "}\n");
  EXPECT_TRUE(Fired("missing-limit-clamp"));
  EXPECT_FALSE(Fired("untrusted-size-sink"));
}

TEST_F(LintTest, ClampInACalleeSilencesMissingLimitClamp) {
  WriteCleanTree();
  WriteFile("src/qb/decode.cc",
            "void Check(const std::string& b) {\n"
            "  if (b.size() > kMaxPayloadBytes) return;\n"
            "}\n"
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b) {\n"
            "  Check(b);\n"
            "}\n");
  EXPECT_FALSE(Fired("missing-limit-clamp"));
}

TEST_F(LintTest, UntrustedSizeSinkSuppressedOnTheSinkLine) {
  WriteCleanTree();
  // Taint findings anchor at the sink, so that is where the allow lives.
  WriteFile("src/qb/decode.cc",
            "void Fill(const std::string& b, std::string* out) {\n"
            "  out->resize(n);  "
            "// lint:allow(untrusted-size-sink): bounded upstream\n"
            "}\n"
            "RDFCUBE_TAINT_SOURCE void Decode(const std::string& b,\n"
            "                                 std::string* out) {\n"
            "  if (b.size() > kMaxPayloadBytes) return;\n"
            "  Fill(b, out);\n"
            "}\n");
  EXPECT_FALSE(Fired("untrusted-size-sink"));
}

// --- lock gate (lock order / blocking / callbacks under a Mutex, §5i) ---------

TEST_F(LintTest, LockOrderCycleFiresOnAbbaAcrossTwoTus) {
  WriteCleanTree();
  // The shared header gives both TUs the same two class-scope Mutexes; the
  // TUs then nest them in opposite orders — the classic ABBA deadlock. No
  // lock_order.txt is needed: a cycle fails even without a manifest.
  WriteFile("src/qb/locks.h",
            "// rdfcube:internal\n"
            "struct LockPair {\n"
            "  Mutex a_;\n"
            "  Mutex b_;\n"
            "};\n");
  WriteFile("src/qb/ab1.cc",
            "#include \"qb/locks.h\"\n"
            "void First(LockPair* p) {\n"
            "  MutexLock la(&p->a_);\n"
            "  MutexLock lb(&p->b_);\n"
            "}\n");
  WriteFile("src/qb/ab2.cc",
            "#include \"qb/locks.h\"\n"
            "void Second(LockPair* p) {\n"
            "  MutexLock lb(&p->b_);\n"
            "  MutexLock la(&p->a_);\n"
            "}\n");
  EXPECT_TRUE(Fired("lock-order-cycle"));
}

TEST_F(LintTest, DeclaredNestingInTheManifestPasses) {
  WriteCleanTree();
  WriteFile("src/qb/locks.h",
            "// rdfcube:internal\n"
            "struct LockPair {\n"
            "  Mutex a_;\n"
            "  Mutex b_;\n"
            "};\n");
  WriteFile("src/qb/ab1.cc",
            "#include \"qb/locks.h\"\n"
            "void First(LockPair* p) {\n"
            "  MutexLock la(&p->a_);\n"
            "  MutexLock lb(&p->b_);\n"
            "}\n");
  WriteFile("tools/lock_order.txt",
            "# sanctioned nesting\n"
            "LockPair::a_ -> LockPair::b_\n");
  EXPECT_FALSE(Fired("lock-order-cycle"));
}

TEST_F(LintTest, UndeclaredNestingFiresWhenAManifestExists) {
  WriteCleanTree();
  WriteFile("src/qb/locks.h",
            "// rdfcube:internal\n"
            "struct LockPair {\n"
            "  Mutex a_;\n"
            "  Mutex b_;\n"
            "};\n");
  WriteFile("src/qb/ab1.cc",
            "#include \"qb/locks.h\"\n"
            "void First(LockPair* p) {\n"
            "  MutexLock la(&p->a_);\n"
            "  MutexLock lb(&p->b_);\n"
            "}\n");
  // The manifest exists but declares nothing: the observed a_ -> b_ nesting
  // is undocumented, which is exactly what the gate polices.
  WriteFile("tools/lock_order.txt", "# no sanctioned nestings\n");
  EXPECT_TRUE(Fired("lock-order-cycle"));
}

TEST_F(LintTest, BlockingUnderLockFiresThroughACallee) {
  WriteCleanTree();
  WriteFile("src/qb/blocked.cc",
            "RDFCUBE_BLOCKING void WaitForWire() {}\n"
            "void Guarded() {\n"
            "  MutexLock lock(&mu_);\n"
            "  WaitForWire();\n"
            "}\n");
  EXPECT_TRUE(Fired("blocking-under-lock"));
}

TEST_F(LintTest, BlockingOutsideTheCriticalSectionPasses) {
  WriteCleanTree();
  // The canonical fix shape: the critical section closes before the wait.
  WriteFile("src/qb/blocked.cc",
            "RDFCUBE_BLOCKING void WaitForWire() {}\n"
            "void Guarded() {\n"
            "  {\n"
            "    MutexLock lock(&mu_);\n"
            "  }\n"
            "  WaitForWire();\n"
            "}\n");
  EXPECT_FALSE(Fired("blocking-under-lock"));
}

TEST_F(LintTest, SleepPrimitiveUnderLockFiresWithoutAnnotations) {
  WriteCleanTree();
  // The lexical blocking vocabulary (sleep/poll/select) needs no
  // RDFCUBE_BLOCKING marker to be caught.
  WriteFile("src/qb/sleepy.cc",
            "void Guarded() {\n"
            "  MutexLock lock(&mu_);\n"
            "  std::this_thread::sleep_for(delay);\n"
            "}\n");
  EXPECT_TRUE(Fired("blocking-under-lock"));
}

TEST_F(LintTest, CallbackUnderLockFiresOnAHeldFunctionInvocation) {
  WriteCleanTree();
  WriteFile("src/qb/notify.cc",
            "void Notify(const std::function<void()>& cb) {\n"
            "  MutexLock lock(&mu_);\n"
            "  cb();\n"
            "}\n");
  EXPECT_TRUE(Fired("callback-under-lock"));
}

TEST_F(LintTest, CopyThenReleaseSilencesCallbackUnderLock) {
  WriteCleanTree();
  // The sanctioned fix shape (Logger::Log): snapshot state under the lock,
  // invoke the callback after the scope closes.
  WriteFile("src/qb/notify.cc",
            "void Notify(const std::function<void()>& cb) {\n"
            "  std::string line;\n"
            "  {\n"
            "    MutexLock lock(&mu_);\n"
            "    line = Format();\n"
            "  }\n"
            "  cb();\n"
            "}\n");
  EXPECT_FALSE(Fired("callback-under-lock"));
}

TEST_F(LintTest, CallbackUnderLockSuppressedOnTheDefinitionLine) {
  WriteCleanTree();
  WriteFile("src/qb/notify.cc",
            "void Notify(const std::function<void()>& cb) {  "
            "// lint:allow(callback-under-lock): closed callee set\n"
            "  MutexLock lock(&mu_);\n"
            "  cb();\n"
            "}\n");
  EXPECT_FALSE(Fired("callback-under-lock"));
}

TEST_F(LintTest, EverySeededViolationClassFiresAtOnce) {
  // One tree carrying one violation of every class: the checker must report
  // all twenty-four, none masking another.
  WriteCleanTree();
  WriteFile("src/core/bad.cc", "void F() { throw 42; }\n");
  WriteFile("src/qb/diag.cc", "void F() { fprintf(stderr, \"x\\n\"); }\n");
  WriteFile("src/sparql/bad.cc", "auto f = [](auto x) { return x; };\n");
  WriteFile("src/qb/orphan.h", "/// \\brief Doc.\nclass Orphan {\n};\n");
  WriteFile("src/util/nodoc.h", "class NoDoc {\n};\n");
  WriteFile("tools/cli.cpp", "int F(const char* s) { return atoi(s); }\n");
  WriteFile("bench/bench_bad.cc", "Stopwatch watch;\n");
  WriteFile("src/qb/locked.cc", "std::mutex mu_;\n");
  WriteFile("src/qb/shadow.cc", "auto obs = Load();\n");
  WriteFile("src/qb/metric.cc",
            "auto& c = obs::DefaultCounter(\"loads\", \"n\");\n");
  WriteFile("src/rdfcube/rdfcube.h",
            "#include \"core/engine.h\"\n"
            "#include \"util/nodoc.h\"\n");
  // Architecture checks: a manifest declaring every module but NOT core->qb,
  // an include that crosses exactly that edge, a two-header cycle, a
  // transitive-only namespace use, and an unguarded .value() chain.
  WriteFile("tools/layers.txt",
            "core:\nsparql:\nqb:\nutil:\n"
            "rdfcube: *\ntools: *\nbench: *\n");
  WriteFile("src/core/edge.cc", "#include \"qb/orphan.h\"\n");
  WriteFile("src/core/cycle_a.h",
            "// rdfcube:internal\n#include \"core/cycle_b.h\"\n");
  WriteFile("src/core/cycle_b.h",
            "// rdfcube:internal\n#include \"core/cycle_a.h\"\n");
  WriteFile("src/core/use.cc", "void F() { qb::Widget w; (void)w; }\n");
  WriteFile("src/qb/cv.cc",
            "int F(const Dict& d, int x) { return d.Find(x).value(); }\n");
  // Call-graph checks: a hot kernel reaching unreserved growth, a hot kernel
  // taking a lock, a core function reaching a (suppressed) throw in a
  // callee, and an unbounded sparql recursion.
  WriteFile("src/qb/hotalloc.cc",
            "int GrowOut(std::vector<int>* v) {\n"
            "  v->push_back(1);\n"
            "  return 0;\n"
            "}\n"
            "RDFCUBE_HOT int HotKernel(std::vector<int>* v) {\n"
            "  return GrowOut(v);\n"
            "}\n");
  WriteFile("src/qb/hotlock.cc",
            "RDFCUBE_HOT int HotGuarded() {\n"
            "  MutexLock guard(&mu_);\n"
            "  return 0;\n"
            "}\n");
  WriteFile("src/core/thrower.h",
            "// rdfcube:internal\n"
            "inline void Boom() { throw 1; }  // lint:allow(no-throw)\n");
  WriteFile("src/core/reacher.cc",
            "#include \"core/thrower.h\"\n"
            "void Reach() { Boom(); }\n");
  WriteFile("src/sparql/recur.cc",
            "int EvalLoop(int x) { return EvalLoop(x - 1); }\n");
  // Taint gate: a clamp-less decoder whose multiplied count feeds a resize
  // trips all three taint checks at once.
  WriteFile("src/qb/taintleak.cc",
            "RDFCUBE_TAINT_SOURCE void DecodeBlob(const std::string& b,\n"
            "                                     std::string* out) {\n"
            "  out->resize(rows * cols);\n"
            "}\n");
  // Lock gate: an ABBA nesting across two TUs (fires with no lock_order.txt
  // manifest — cycles always fail), a blocking annotated callee reached
  // under a lock, and a std::function invoked under a lock.
  WriteFile("src/qb/abba.h",
            "// rdfcube:internal\n"
            "/// \\brief Two Mutexes the TUs below nest in opposite orders.\n"
            "struct AbbaPair {\n"
            "  Mutex first_;\n"
            "  Mutex second_;\n"
            "};\n");
  WriteFile("src/qb/abba1.cc",
            "#include \"qb/abba.h\"\n"
            "void OrderAb(AbbaPair* p) {\n"
            "  MutexLock la(&p->first_);\n"
            "  MutexLock lb(&p->second_);\n"
            "}\n");
  WriteFile("src/qb/abba2.cc",
            "#include \"qb/abba.h\"\n"
            "void OrderBa(AbbaPair* p) {\n"
            "  MutexLock lb(&p->second_);\n"
            "  MutexLock la(&p->first_);\n"
            "}\n");
  WriteFile("src/qb/blockheld.cc",
            "RDFCUBE_BLOCKING void WaitForWire() {}\n"
            "void GuardedWait() {\n"
            "  MutexLock lock(&wait_mu_);\n"
            "  WaitForWire();\n"
            "}\n");
  WriteFile("src/qb/cbheld.cc",
            "void NotifyHeld(const std::function<void()>& cb) {\n"
            "  MutexLock lock(&cb_mu_);\n"
            "  cb();\n"
            "}\n");
  const auto names = ChecksFired();
  for (const char* expected :
       {"no-throw", "std-function-callback", "umbrella-sync",
        "doxygen-public", "checked-parse", "bare-stopwatch",
        "lock-annotation", "obs-shadowing", "metric-name", "no-raw-stderr",
        "checked-value", "layer-dag", "include-cycle", "iwyu-direct",
        "hot-path-alloc", "hot-path-lock", "no-throw-transitive",
        "unbounded-recursion", "untrusted-size-sink", "unchecked-size-arith",
        "missing-limit-clamp", "lock-order-cycle", "blocking-under-lock",
        "callback-under-lock"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                names.end())
        << "check did not fire: " << expected;
  }
  EXPECT_EQ(names.size(), 24u);
}

TEST_F(LintTest, ViolationsAreSortedByFileAndLine) {
  WriteCleanTree();
  WriteFile("src/core/bad.cc", "void F() { throw 1; }\nvoid G() { throw 2; }\n");
  WriteFile("src/core/also_bad.cc", "void H() { throw 3; }\n");
  const auto violations = RunAllChecks(root_.string());
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_EQ(violations[0].file, "src/core/also_bad.cc");
  EXPECT_EQ(violations[1].line, 1u);
  EXPECT_EQ(violations[2].line, 2u);
}

TEST_F(LintTest, FormatViolationIsFileLineCheckMessage) {
  Violation v{"no-throw", "src/core/bad.cc", 7, "boom"};
  EXPECT_EQ(FormatViolation(v), "src/core/bad.cc:7: [no-throw] boom");
}

}  // namespace
}  // namespace lint
}  // namespace rdfcube
