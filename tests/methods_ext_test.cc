// Tests for the sparse occurrence matrix, the hybrid method (§6), and the
// distributed cubeMasking simulation (§6).

#include <gtest/gtest.h>

#include <set>

#include "core/baseline.h"
#include "core/distributed.h"
#include "core/hybrid.h"
#include "core/occurrence_matrix.h"
#include "core/sparse_matrix.h"
#include "datagen/realworld.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

struct Snapshot {
  std::set<std::pair<qb::ObsId, qb::ObsId>> full;
  std::set<std::pair<qb::ObsId, qb::ObsId>> compl_pairs;
  std::set<std::tuple<qb::ObsId, qb::ObsId, int>> partial;

  static Snapshot From(const CollectingSink& sink) {
    Snapshot s;
    for (const auto& p : sink.full()) s.full.insert(p);
    for (const auto& p : sink.complementary()) s.compl_pairs.insert(p);
    for (const auto& p : sink.partial()) {
      s.partial.insert({p.a, p.b, static_cast<int>(p.degree * 1000 + 0.5)});
    }
    return s;
  }
  bool operator==(const Snapshot& o) const {
    return full == o.full && compl_pairs == o.compl_pairs &&
           partial == o.partial;
  }
};

Snapshot BaselineSnapshot(const qb::ObservationSet& obs) {
  const OccurrenceMatrix om(obs);
  CollectingSink sink;
  BaselineOptions options;
  EXPECT_TRUE(RunBaseline(obs, om, options, &sink).ok());
  return Snapshot::From(sink);
}

// --- Sparse matrix ---------------------------------------------------------------

TEST(SparseMatrixTest, AgreesWithDenseOnRunningExample) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const OccurrenceMatrix dense(obs);
  const SparseOccurrenceMatrix sparse(obs);
  ASSERT_EQ(sparse.num_rows(), dense.num_rows());
  ASSERT_EQ(sparse.num_columns(), dense.num_columns());
  for (qb::ObsId a = 0; a < obs.size(); ++a) {
    for (qb::ObsId b = 0; b < obs.size(); ++b) {
      EXPECT_EQ(sparse.ContainsAll(a, b), dense.ContainsAll(a, b))
          << a << "," << b;
      for (qb::DimId d = 0; d < dense.num_dimensions(); ++d) {
        EXPECT_EQ(sparse.Contains(a, b, d), dense.Contains(a, b, d))
            << a << "," << b << " dim " << d;
      }
    }
  }
}

TEST(SparseMatrixTest, UsesFarLessMemoryThanDense) {
  // The memory win needs a wide feature space (the paper's point: ~2.6k
  // code columns but only |P| * depth set bits per row) — use the
  // statistical corpus, not the narrow random trees.
  auto generated = datagen::GenerateRealWorldPrefix(300, 5);
  ASSERT_TRUE(generated.ok());
  const qb::ObservationSet& obs = *generated->observations;
  const OccurrenceMatrix dense(obs);
  const SparseOccurrenceMatrix sparse(obs);
  // Dense bytes: rows * words.
  const std::size_t dense_bytes =
      dense.num_rows() * ((dense.num_columns() + 63) / 64) * 8;
  EXPECT_LT(sparse.ApproximateBytes(), dense_bytes);
  // Entries per row bounded by sum of (depth+1) per dimension, far below
  // the number of columns.
  EXPECT_LT(sparse.num_entries() / sparse.num_rows(), sparse.num_columns());
}

class SparseBaselineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseBaselineTest, MatchesDenseBaseline) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 3 + 1, 60);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot dense = BaselineSnapshot(obs);
  const SparseOccurrenceMatrix sparse(obs);
  CollectingSink sink;
  SparseBaselineOptions options;
  ASSERT_TRUE(RunBaselineSparse(obs, sparse, options, &sink).ok());
  EXPECT_EQ(Snapshot::From(sink), dense);

  // Fast path (no partial) also agrees on full/compl.
  CollectingSink fast;
  options.selector.partial_containment = false;
  ASSERT_TRUE(RunBaselineSparse(obs, sparse, options, &fast).ok());
  EXPECT_EQ(Snapshot::From(fast).full, dense.full);
  EXPECT_EQ(Snapshot::From(fast).compl_pairs, dense.compl_pairs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseBaselineTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(SparseBaselineTest2, DeadlineAborts) {
  qb::Corpus corpus = MakeRandomCorpus(9, 400);
  const qb::ObservationSet& obs = *corpus.observations;
  const SparseOccurrenceMatrix sparse(obs);
  CollectingSink sink;
  SparseBaselineOptions options;
  options.deadline = Deadline(0.0);
  EXPECT_TRUE(RunBaselineSparse(obs, sparse, options, &sink).IsTimedOut());
}

// --- Hybrid method ----------------------------------------------------------------

TEST(HybridTest, ExactOnFullAndComplSubsetOnPartial) {
  qb::Corpus corpus = MakeRandomCorpus(17, 120);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = BaselineSnapshot(obs);

  CollectingSink sink;
  HybridOptions options;
  HybridStats stats;
  ASSERT_TRUE(RunHybrid(obs, options, &sink, &stats).ok());
  const Snapshot hybrid = Snapshot::From(sink);

  // Exact stages.
  EXPECT_EQ(hybrid.full, base.full);
  EXPECT_EQ(hybrid.compl_pairs, base.compl_pairs);
  // Approximate stage: a subset of the true partial set.
  for (const auto& p : hybrid.partial) {
    EXPECT_TRUE(base.partial.count(p));
  }
  EXPECT_GT(stats.masking.num_cubes, 0u);
  EXPECT_GT(stats.cluster.num_clusters, 0u);
  EXPECT_GE(stats.masking_seconds, 0.0);
  EXPECT_GE(stats.clustering_seconds, 0.0);
}

TEST(HybridTest, SkippingPartialIsPureCubeMasking) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  CollectingSink sink;
  HybridOptions options;
  options.compute_partial = false;
  ASSERT_TRUE(RunHybrid(obs, options, &sink).ok());
  EXPECT_TRUE(sink.partial().empty());
  EXPECT_EQ(sink.full().size(), 4u);
  EXPECT_EQ(sink.complementary().size(), 2u);
}

// --- Distributed simulation ---------------------------------------------------------

class DistributedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistributedTest, MatchesBaselineAcrossWorkerCounts) {
  qb::Corpus corpus = MakeRandomCorpus(GetParam() * 11 + 2, 60);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot base = BaselineSnapshot(obs);
  for (std::size_t workers : {1u, 2u, 3u, 5u}) {
    CollectingSink sink;
    DistributedOptions options;
    options.num_workers = workers;
    DistributedStats stats;
    ASSERT_TRUE(RunDistributedMasking(obs, options, &sink, &stats).ok());
    EXPECT_EQ(Snapshot::From(sink), base) << "workers=" << workers;
    EXPECT_EQ(stats.num_workers, workers);
    if (workers > 1) {
      EXPECT_GT(stats.signature_messages, 0u);
    } else {
      EXPECT_EQ(stats.cross_pairs, 0u);
      EXPECT_EQ(stats.shipped_observations, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DistributedStatsTest, LatticePruningLimitsShipping) {
  // Not every observation should ship: incomparable cubes stay local.
  qb::Corpus corpus = MakeRandomCorpus(23, 200, /*num_dims=*/4);
  const qb::ObservationSet& obs = *corpus.observations;
  CollectingSink sink;
  DistributedOptions options;
  options.num_workers = 4;
  options.selector.partial_containment = false;  // strongest pruning
  DistributedStats stats;
  ASSERT_TRUE(RunDistributedMasking(obs, options, &sink, &stats).ok());
  // Shipping accounts cubes per worker pair; the full-broadcast upper bound
  // is (W-1) * n. Pruning must beat it.
  EXPECT_LT(stats.shipped_observations,
            (options.num_workers - 1) * obs.size());
  EXPECT_LT(stats.CrossFraction(obs.size()), 1.0);
}

TEST(DistributedStatsTest, DeadlineAborts) {
  qb::Corpus corpus = MakeRandomCorpus(29, 400);
  CollectingSink sink;
  DistributedOptions options;
  options.num_workers = 3;
  options.deadline = Deadline(0.0);
  EXPECT_TRUE(RunDistributedMasking(*corpus.observations, options, &sink)
                  .IsTimedOut());
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
