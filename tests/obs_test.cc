// Observability layer tests: metrics registry semantics (registration,
// kind collisions, histogram bucketing, JSON/Prometheus export), TraceSpan
// nesting and self-time accounting, and RunReport assembly — including the
// CapturePhases partition invariant the bench harness relies on: with a root
// span id, phase totals (direct children + "(harness)" self time) sum to the
// root's duration exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "tests/test_corpus.h"
#include "base/status.h"

namespace rdfcube {
namespace obs {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CounterRegistersOnceAndAccumulates) {
  MetricsRegistry registry;
  Result<Counter*> first = registry.GetCounter("rdfcube_test_events_total", "h");
  ASSERT_TRUE(first.ok());
  (*first)->Increment();
  (*first)->Increment(41);
  Result<Counter*> second =
      registry.GetCounter("rdfcube_test_events_total", "ignored");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // same instance, not a new registration
  EXPECT_EQ((*second)->value(), 42u);
}

TEST(MetricsRegistryTest, KindCollisionIsAlreadyExists) {
  MetricsRegistry registry;
  ASSERT_TRUE(registry.GetCounter("rdfcube_test_mixed", "h").ok());
  const Result<Gauge*> as_gauge = registry.GetGauge("rdfcube_test_mixed", "h");
  ASSERT_FALSE(as_gauge.ok());
  EXPECT_TRUE(as_gauge.status().IsAlreadyExists());
  const Result<Histogram*> as_histogram =
      registry.GetHistogram("rdfcube_test_mixed", "h", {1.0});
  ASSERT_FALSE(as_histogram.ok());
  EXPECT_TRUE(as_histogram.status().IsAlreadyExists());
}

TEST(MetricsRegistryTest, MalformedNameIsInvalidArgument) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.GetCounter("", "h").status().IsInvalidArgument());
  EXPECT_TRUE(
      registry.GetCounter("9starts_with_digit", "h").status().IsInvalidArgument());
  EXPECT_TRUE(registry.GetCounter("has-dash", "h").status().IsInvalidArgument());
  EXPECT_TRUE(registry.GetCounter("has space", "h").status().IsInvalidArgument());
  EXPECT_TRUE(registry.GetCounter("_leading_underscore_ok", "h").ok());
}

TEST(MetricsRegistryTest, BadHistogramBoundsAreInvalidArgument) {
  MetricsRegistry registry;
  EXPECT_TRUE(
      registry.GetHistogram("rdfcube_test_h1", "h", {}).status().IsInvalidArgument());
  EXPECT_TRUE(registry.GetHistogram("rdfcube_test_h2", "h", {1.0, 1.0})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(registry.GetHistogram("rdfcube_test_h3", "h", {2.0, 1.0})
                  .status()
                  .IsInvalidArgument());
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(registry.GetHistogram("rdfcube_test_h4", "h", {1.0, inf})
                  .status()
                  .IsInvalidArgument());
}

TEST(MetricsRegistryTest, FirstHistogramBoundsWin) {
  MetricsRegistry registry;
  Result<Histogram*> first =
      registry.GetHistogram("rdfcube_test_seconds", "h", {1.0, 2.0});
  ASSERT_TRUE(first.ok());
  Result<Histogram*> second =
      registry.GetHistogram("rdfcube_test_seconds", "h", {5.0, 10.0, 20.0});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ((*second)->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  MetricsRegistry registry;
  Result<Histogram*> r =
      registry.GetHistogram("rdfcube_test_latency", "h", {1.0, 2.0, 4.0});
  ASSERT_TRUE(r.ok());
  Histogram& h = **r;
  h.Observe(0.5);  // <= 1      -> bucket 0
  h.Observe(1.0);  // == bound  -> bucket 0 (le semantics)
  h.Observe(1.5);  //           -> bucket 1
  h.Observe(4.0);  // == bound  -> bucket 2
  h.Observe(9.0);  // overflow  -> +Inf bucket
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  h.Reset();
  EXPECT_EQ(h.bucket_counts(), (std::vector<uint64_t>{0, 0, 0, 0}));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  Result<Counter*> c = registry.GetCounter("rdfcube_test_c", "h");
  Result<Gauge*> g = registry.GetGauge("rdfcube_test_g", "h");
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(g.ok());
  (*c)->Increment(7);
  (*g)->Set(-3);
  registry.ResetAll();
  EXPECT_EQ((*c)->value(), 0u);
  EXPECT_EQ((*g)->value(), 0);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameWithinKind) {
  MetricsRegistry registry;
  ASSERT_TRUE(registry.GetCounter("rdfcube_test_b", "h").ok());
  ASSERT_TRUE(registry.GetCounter("rdfcube_test_a", "h").ok());
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "rdfcube_test_a");
  EXPECT_EQ(snap.counters[1].name, "rdfcube_test_b");
}

TEST(MetricsExportTest, JsonGolden) {
  MetricsRegistry registry;
  Result<Counter*> c = registry.GetCounter("rdfcube_test_ops_total", "ops");
  Result<Gauge*> g = registry.GetGauge("rdfcube_test_depth", "depth");
  Result<Histogram*> h =
      registry.GetHistogram("rdfcube_test_secs", "secs", {1.0, 2.0});
  ASSERT_TRUE(c.ok() && g.ok() && h.ok());
  (*c)->Increment(3);
  (*g)->Set(-2);
  (*h)->Observe(0.5);
  (*h)->Observe(5.0);
  EXPECT_EQ(MetricsToJson(registry.Snapshot()),
            "{\"counters\":{\"rdfcube_test_ops_total\":3},"
            "\"gauges\":{\"rdfcube_test_depth\":-2},"
            "\"histograms\":{\"rdfcube_test_secs\":{\"count\":2,\"sum\":5.5,"
            "\"bounds\":[1,2],\"buckets\":[1,0,1]}}}");
}

TEST(MetricsExportTest, PrometheusCumulativeBuckets) {
  MetricsRegistry registry;
  Result<Histogram*> h =
      registry.GetHistogram("rdfcube_test_secs", "run seconds", {1.0, 2.0});
  ASSERT_TRUE(h.ok());
  (*h)->Observe(0.5);
  (*h)->Observe(1.5);
  (*h)->Observe(9.0);
  const std::string text = MetricsToPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP rdfcube_test_secs run seconds\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfcube_test_secs histogram\n"),
            std::string::npos);
  // Prometheus buckets are cumulative: le="2" includes le="1".
  EXPECT_NE(text.find("rdfcube_test_secs_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfcube_test_secs_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfcube_test_secs_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfcube_test_secs_count 3\n"), std::string::npos);
}

TEST(MetricsExportTest, CounterAndGaugeExposition) {
  MetricsRegistry registry;
  Result<Counter*> c = registry.GetCounter("rdfcube_test_total", "events");
  ASSERT_TRUE(c.ok());
  (*c)->Increment(5);
  const std::string text = MetricsToPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE rdfcube_test_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("rdfcube_test_total 5\n"), std::string::npos);
}

TEST(MetricsGlobalTest, DefaultCounterReturnsSameInstance) {
  Counter& a = DefaultCounter("rdfcube_obs_test_default_total", "h");
  Counter& b = DefaultCounter("rdfcube_obs_test_default_total", "h");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.value();
  b.Increment();
  EXPECT_EQ(a.value(), before + 1);
}

TEST(MetricsGlobalTest, ExponentialBuckets) {
  EXPECT_EQ(ExponentialBuckets(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
}

// --- Prometheus exposition conformance ---------------------------------------

TEST(MetricsExportTest, PrometheusHelpEscapesNewlineAndBackslash) {
  MetricsRegistry registry;
  Result<Counter*> c = registry.GetCounter("rdfcube_test_escaped_total",
                                           "line one\nline two \\ done");
  ASSERT_TRUE(c.ok());
  const std::string text = MetricsToPrometheus(registry.Snapshot());
  // One physical HELP line: the newline and backslash are escaped, so a
  // scraper never sees a continuation line it would reject.
  EXPECT_NE(text.find("# HELP rdfcube_test_escaped_total "
                      "line one\\nline two \\\\ done\n"),
            std::string::npos);
  EXPECT_EQ(text.find("line two \\ done"), std::string::npos);
}

TEST(MetricsExportTest, PrometheusExactTextForFullRegistry) {
  MetricsRegistry registry;
  Result<Counter*> c = registry.GetCounter("rdfcube_test_ops_total", "ops");
  Result<Gauge*> g = registry.GetGauge("rdfcube_test_depth", "depth");
  Result<Histogram*> h =
      registry.GetHistogram("rdfcube_test_secs", "secs", {1.0, 2.0});
  ASSERT_TRUE(c.ok() && g.ok() && h.ok());
  (*c)->Increment(3);
  (*g)->Set(-2);
  (*h)->Observe(0.5);
  (*h)->Observe(1.5);
  (*h)->Observe(5.0);
  // Pin the whole exposition byte-for-byte: HELP before TYPE, cumulative
  // _bucket lines with le labels, then _sum and _count.
  EXPECT_EQ(MetricsToPrometheus(registry.Snapshot()),
            "# HELP rdfcube_test_ops_total ops\n"
            "# TYPE rdfcube_test_ops_total counter\n"
            "rdfcube_test_ops_total 3\n"
            "# HELP rdfcube_test_depth depth\n"
            "# TYPE rdfcube_test_depth gauge\n"
            "rdfcube_test_depth -2\n"
            "# HELP rdfcube_test_secs secs\n"
            "# TYPE rdfcube_test_secs histogram\n"
            "rdfcube_test_secs_bucket{le=\"1\"} 1\n"
            "rdfcube_test_secs_bucket{le=\"2\"} 2\n"
            "rdfcube_test_secs_bucket{le=\"+Inf\"} 3\n"
            "rdfcube_test_secs_sum 7\n"
            "rdfcube_test_secs_count 3\n");
}

// --- Logger ------------------------------------------------------------------

// Captures every formatted line for exact-match assertions.
class CapturingSink final : public LogSink {
 public:
  void Write(const std::string& line) override { lines.push_back(line); }
  std::vector<std::string> lines;
};

TEST(LoggerTest, TextFormatQuotesMessageAndNonBareFieldValues) {
  Logger logger;
  CapturingSink sink;
  logger.SetSink(&sink);
  logger.SetIncludeUptime(false);
  logger.Log(LogLevel::kInfo, "server", "snapshot built",
             {Field("version", static_cast<uint64_t>(3)),
              Field("path", "/data/demo.ttl"),
              Field("note", "two words")});
  ASSERT_EQ(sink.lines.size(), 1u);
  // Bare tokens (alnum . : + - / _) print unquoted; anything else quotes.
  EXPECT_EQ(sink.lines[0],
            "level=info module=server msg=\"snapshot built\" version=3 "
            "path=/data/demo.ttl note=\"two words\"\n");
}

TEST(LoggerTest, JsonLinesFormatIsOneObjectPerLine) {
  Logger logger;
  CapturingSink sink;
  logger.SetSink(&sink);
  logger.SetIncludeUptime(false);
  logger.SetJsonLines(true);
  logger.Log(LogLevel::kWarn, "serverd", "reload \"failed\"",
             {Field("failures", static_cast<uint64_t>(2))});
  ASSERT_EQ(sink.lines.size(), 1u);
  EXPECT_EQ(sink.lines[0],
            "{\"level\":\"warn\",\"module\":\"serverd\","
            "\"msg\":\"reload \\\"failed\\\"\",\"failures\":\"2\"}\n");
}

TEST(LoggerTest, UptimeFieldLeadsTheLineWhenEnabled) {
  Logger logger;
  CapturingSink sink;
  logger.SetSink(&sink);
  logger.Log(LogLevel::kInfo, "m", "x");
  ASSERT_EQ(sink.lines.size(), 1u);
  EXPECT_EQ(sink.lines[0].rfind("ts=", 0), 0u);  // default: uptime on
}

TEST(LoggerTest, MinLevelFiltersBelowWithoutCountingDrops) {
  Logger logger;
  CapturingSink sink;
  logger.SetSink(&sink);
  logger.SetIncludeUptime(false);
  logger.Log(LogLevel::kDebug, "m", "invisible");  // default min is Info
  logger.SetMinLevel(LogLevel::kWarn);
  logger.Log(LogLevel::kInfo, "m", "also invisible");
  logger.Log(LogLevel::kError, "m", "visible");
  ASSERT_EQ(sink.lines.size(), 1u);
  EXPECT_NE(sink.lines[0].find("msg=\"visible\""), std::string::npos);
  // Level filtering is not rate limiting: nothing counts as dropped.
  EXPECT_EQ(logger.dropped(), 0u);
  EXPECT_EQ(logger.emitted(), 1u);
}

TEST(LoggerTest, RateLimitDropsAndCountsExcessLines) {
  Logger logger;
  CapturingSink sink;
  logger.SetSink(&sink);
  logger.SetIncludeUptime(false);
  logger.SetRateLimit(2);
  for (int i = 0; i < 5; ++i) {
    logger.Log(LogLevel::kInfo, "m", "spam");
  }
  EXPECT_EQ(sink.lines.size(), 2u);
  EXPECT_EQ(logger.emitted(), 2u);
  EXPECT_EQ(logger.dropped(), 3u);
}

TEST(LoggerTest, FieldOverloadsFormatUniformly) {
  EXPECT_EQ(Field("k", static_cast<uint64_t>(7)).value, "7");
  EXPECT_EQ(Field("k", static_cast<int64_t>(-7)).value, "-7");
  EXPECT_EQ(Field("k", 2.5).value, "2.5");
  EXPECT_EQ(Field("k", "text").value, "text");
  EXPECT_EQ(Field("k", std::string("s")).value, "s");
}

TEST(LoggerTest, NullSinkRestoresStderrWithoutCrashing) {
  Logger logger;
  CapturingSink sink;
  logger.SetSink(&sink);
  logger.SetMinLevel(LogLevel::kError);  // keep real stderr quiet below
  logger.SetSink(nullptr);               // back to the default sink
  logger.Log(LogLevel::kDebug, "m", "filtered before formatting");
  EXPECT_TRUE(sink.lines.empty());
}

// --- TraceCollector / TraceSpan ----------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceCollector::Global().Enable(); }
  void TearDown() override { TraceCollector::Global().Disable(); }
};

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  TraceCollector::Global().Disable();
  TraceCollector& collector = TraceCollector::Global();
  {
    TraceSpan span("test/ignored");
    EXPECT_EQ(span.id(), 0u);  // unsampled
    EXPECT_GE(span.ElapsedSeconds(), 0.0);  // the clock still runs
  }
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST_F(TraceTest, NestedSpansRecordParentChildAndSelfTime) {
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    TraceSpan outer("test/outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0u);
    {
      TraceSpan inner("test/inner");
      inner_id = inner.id();
    }
  }
  const std::vector<SpanEvent> events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is ordered by start time: outer began first.
  EXPECT_EQ(events[0].span_id, outer_id);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].span_id, inner_id);
  EXPECT_EQ(events[1].parent_id, outer_id);
  EXPECT_EQ(events[1].depth, 1u);
  // Parent self time = duration minus direct children, exactly.
  EXPECT_EQ(events[0].self_us, events[0].duration_us - events[1].duration_us);
  EXPECT_EQ(events[1].self_us, events[1].duration_us);
}

TEST_F(TraceTest, EndRecordsEarlyAndMakesDestructorANoOp) {
  {
    TraceSpan span("test/ended");
    span.End();
    EXPECT_EQ(span.id(), 0u);  // no longer recording
    span.End();                // idempotent
  }
  const std::vector<SpanEvent> events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test/ended");
}

TEST_F(TraceTest, SequentialPhasesEndedEarlyDoNotNest) {
  {
    TraceSpan root("test/root");
    TraceSpan a("test/a");
    a.End();
    TraceSpan b("test/b");
    b.End();
  }
  const std::vector<SpanEvent> events = TraceCollector::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  uint64_t root_id = 0;
  for (const SpanEvent& e : events) {
    if (e.name == "test/root") root_id = e.span_id;
  }
  for (const SpanEvent& e : events) {
    if (e.name == "test/root") continue;
    EXPECT_EQ(e.parent_id, root_id) << e.name;
    EXPECT_EQ(e.depth, 1u) << e.name;
  }
}

TEST_F(TraceTest, ClearDropsRetainedSpans) {
  { TraceSpan span("test/cleared"); }
  EXPECT_EQ(TraceCollector::Global().Snapshot().size(), 1u);
  TraceCollector::Global().Clear();
  EXPECT_TRUE(TraceCollector::Global().Snapshot().empty());
  EXPECT_TRUE(TraceCollector::Global().enabled());
}

TEST_F(TraceTest, RingOverflowCountsDrops) {
  TraceCollector::Global().Enable(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("test/overflow");
  }
  EXPECT_EQ(TraceCollector::Global().Snapshot().size(), 4u);
  EXPECT_EQ(TraceCollector::Global().dropped(), 6u);
}

TEST_F(TraceTest, RollupAggregatesByName) {
  {
    TraceSpan outer("test/outer");
    { TraceSpan inner("test/inner"); }
    { TraceSpan inner("test/inner"); }
  }
  const std::vector<SpanRollup> rollup =
      RollupSpans(TraceCollector::Global().Snapshot());
  ASSERT_EQ(rollup.size(), 2u);
  const SpanRollup* outer = nullptr;
  const SpanRollup* inner = nullptr;
  for (const SpanRollup& r : rollup) {
    if (r.name == "test/outer") outer = &r;
    if (r.name == "test/inner") inner = &r;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The outer span encloses both inners, and its self time is its duration
  // minus its direct children's (exact in µs arithmetic).
  EXPECT_GE(outer->total_seconds, inner->total_seconds);
  EXPECT_NEAR(outer->self_seconds,
              outer->total_seconds - inner->total_seconds, 1e-9);
}

TEST_F(TraceTest, ChromeTraceJsonListsCompleteEvents) {
  { TraceSpan span("test/chrome"); }
  const std::string json = TraceCollector::Global().ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test/chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

// --- RunReport ---------------------------------------------------------------

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override { TraceCollector::Global().Enable(); }
  void TearDown() override { TraceCollector::Global().Disable(); }
};

TEST_F(ReportTest, CapturePhasesPartitionsRootWallClock) {
  uint64_t root_id = 0;
  {
    TraceSpan root("bench/test_run");
    root_id = root.id();
    { TraceSpan phase("bench/phase_a"); }
    { TraceSpan phase("bench/phase_b"); }
    {
      TraceSpan phase("bench/phase_a");
      // Grandchildren must roll into their phase, not appear as phases.
      TraceSpan detail("bench/detail");
    }
    // Spans are recorded at µs resolution; make the root measurably long so
    // wall_seconds is strictly positive on fast machines.
    while (root.ElapsedSeconds() < 200e-6) {
    }
  }
  RunReport report("test_run");
  report.CaptureMetrics();
  report.CapturePhases(root_id);
  // wall_seconds comes from the root event itself.
  EXPECT_GT(report.wall_seconds(), 0.0);
  // Phases: the root's direct children plus the synthetic harness entry.
  std::vector<std::string> names;
  double total = 0.0;
  for (const SpanRollup& p : report.phases()) {
    names.push_back(p.name);
    total += p.total_seconds;
  }
  EXPECT_EQ(names.size(), 3u);
  EXPECT_NE(std::find(names.begin(), names.end(), "bench/phase_a"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "bench/phase_b"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "(harness)"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "bench/detail"),
            names.end());
  // The partition invariant behind the BENCH_*.json 10% acceptance check:
  // phase totals sum to the root duration exactly (up to rounding to µs).
  EXPECT_NEAR(total, report.wall_seconds(), 1e-5);
  // The full rollup still sees every span, including the grandchild.
  bool detail_in_rollup = false;
  for (const SpanRollup& r : report.span_rollup()) {
    if (r.name == "bench/detail") detail_in_rollup = true;
  }
  EXPECT_TRUE(detail_in_rollup);
}

TEST_F(ReportTest, CapturePhasesWithoutRootRollsUpEverything) {
  { TraceSpan span("test/alpha"); }
  { TraceSpan span("test/beta"); }
  RunReport report("all_spans");
  report.CapturePhases();
  EXPECT_EQ(report.phases().size(), 2u);
  EXPECT_EQ(report.wall_seconds(), 0.0);  // nothing to derive it from
}

TEST_F(ReportTest, ToJsonCarriesMetaStatsPhasesAndMetrics) {
  Counter& c = DefaultCounter("rdfcube_obs_test_report_total", "h");
  c.Reset();
  c.Increment(9);
  uint64_t root_id = 0;
  {
    TraceSpan root("bench/json_run");
    root_id = root.id();
    { TraceSpan phase("bench/only_phase"); }
  }
  RunReport report("json_run");
  report.AddMeta("large_mode", "0");
  report.AddStat("observations", 60.0);
  report.CaptureMetrics();
  report.CapturePhases(root_id);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"name\":\"json_run\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"large_mode\":\"0\""), std::string::npos);
  EXPECT_NE(json.find("\"observations\":60"), std::string::npos);
  EXPECT_NE(json.find("\"bench/only_phase\""), std::string::npos);
  EXPECT_NE(json.find("(harness)"), std::string::npos);
  EXPECT_NE(json.find("\"rdfcube_obs_test_report_total\":9"),
            std::string::npos);
}

TEST_F(ReportTest, WriteRunReportJsonRoundTrips) {
  RunReport report("written_run");
  report.AddMeta("k", "v");
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "BENCH_written_run.json")
          .string();
  ASSERT_TRUE(WriteRunReportJson(report, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.ToJson());
  std::remove(path.c_str());
}

TEST_F(ReportTest, WriteRunReportJsonToUnwritablePathIsIOError) {
  RunReport report("nope");
  const Status st =
      WriteRunReportJson(report, "/nonexistent_dir/BENCH_nope.json");
  EXPECT_TRUE(st.IsIOError());
}

// --- End-to-end: engine run -> instrumentation -> report ---------------------

TEST_F(ReportTest, EngineRunProducesSpansMetricsAndFilledReport) {
  MetricsRegistry::Global().ResetAll();
  TraceCollector::Global().Enable();
  const qb::Corpus corpus = testutil::MakeRandomCorpus(17, 60);
  core::EngineReport engine_report;
  uint64_t root_id = 0;
  {
    TraceSpan root("test/engine_run");
    root_id = root.id();
    core::CountingSink sink;
    core::EngineOptions options;
    options.method = core::Method::kCubeMasking;
    ASSERT_TRUE(core::ComputeRelationships(*corpus.observations, options,
                                           &sink, &engine_report)
                    .ok());
  }
  // The cubeMasking engine emitted its phase spans under our root.
  bool saw_masking_span = false;
  for (const SpanRollup& r :
       RollupSpans(TraceCollector::Global().Snapshot())) {
    if (r.name.rfind("masking/", 0) == 0) saw_masking_span = true;
  }
  EXPECT_TRUE(saw_masking_span);
  // ...and bumped its pair counters.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  uint64_t pairs = 0;
  for (const CounterSample& c : snap.counters) {
    if (c.name == "rdfcube_masking_cube_pairs_checked_total") pairs = c.value;
  }
  EXPECT_GT(pairs, 0u);
  // FillRunReport flattens the engine stats into the run record.
  RunReport report("engine_run");
  core::FillRunReport(engine_report, &report);
  report.CaptureMetrics();
  report.CapturePhases(root_id);
  EXPECT_GT(report.wall_seconds(), 0.0);
  EXPECT_FALSE(report.stats().empty());
  EXPECT_FALSE(report.phases().empty());
  bool harness_entry = false;
  for (const SpanRollup& p : report.phases()) {
    if (p.name == "(harness)") harness_entry = true;
  }
  EXPECT_TRUE(harness_entry);
}

}  // namespace
}  // namespace obs
}  // namespace rdfcube
