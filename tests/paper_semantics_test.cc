// Oracle tests pinning the relationship semantics to the paper's text.
//
// The paper gives two readings of its definitions:
//  (a) the *literal* Definitions 3-4 of §2, quantifying over the actual
//      dataset schemas (P_a ∩ P_b, P_b \ P_a), and
//  (b) the *computational* semantics of §3.1, where every observation is
//      root-padded to the global dimension set and complementarity is
//      mutual full dimensional containment (OCM[a][b] = OCM[b][a] = 1).
// The two agree everywhere except one asymmetric corner: literal Def. 3
// accepts Compl(o_a, o_b) when o_a *specializes* a dimension o_b lacks
// (P_b \ P_a = ∅ puts no constraint on o_a's extra dimensions), e.g.
// Compl(o12 = (Austin, 2011, Male), o35 = (Austin, 2011)) — while the
// OCM-based engines, following the paper's own worked example (Figure 3
// lists only (o11,o31) and (o13,o35)), require equality after padding and
// reject the pair. These tests encode the literal definitions as an
// independent oracle and assert exactly that relationship between the two
// readings.

#include <gtest/gtest.h>

#include <set>

#include "core/baseline.h"
#include "core/occurrence_matrix.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRunningExample;

class PaperSemanticsTest : public ::testing::Test {
 protected:
  PaperSemanticsTest() : corpus_(MakeRunningExample()) {}

  const qb::ObservationSet& obs() const { return *corpus_.observations; }
  const qb::CubeSpace& space() const { return *corpus_.space; }

  bool InSchema(qb::ObsId o, qb::DimId d) const {
    const qb::DatasetMeta& meta = obs().dataset(obs().obs(o).dataset);
    return (meta.dim_mask & (uint64_t{1} << d)) != 0;
  }

  // h_o^d under the actual schema; for schema dims left unset the builder
  // stores kNoCode, which Def. 2's root semantics maps to the root.
  hierarchy::CodeId Value(qb::ObsId o, qb::DimId d) const {
    return obs().ValueOrRoot(o, d);
  }

  // --- Literal Def. 3: Compl(a, b). -----------------------------------------
  bool LiteralCompl(qb::ObsId a, qb::ObsId b) const {
    for (qb::DimId d = 0; d < space().num_dimensions(); ++d) {
      const bool in_a = InSchema(a, d);
      const bool in_b = InSchema(b, d);
      if (in_a && in_b) {
        if (Value(a, d) != Value(b, d)) return false;  // condition (1)
      } else if (in_b) {  // P_b \ P_a
        if (Value(b, d) != space().code_list(d).root()) return false;  // (2)
      }
      // dims only in P_a (or neither): unconstrained by Def. 3.
    }
    return true;
  }

  // --- Literal Def. 4: Cont_full(a, b) over shared dims. ---------------------
  bool LiteralFull(qb::ObsId a, qb::ObsId b) const {
    if (!obs().SharesMeasure(a, b)) return false;  // condition (3)
    bool any_shared = false;
    for (qb::DimId d = 0; d < space().num_dimensions(); ++d) {
      if (!InSchema(a, d) || !InSchema(b, d)) continue;
      any_shared = true;
      if (!space().code_list(d).IsAncestorOrSelf(Value(a, d), Value(b, d))) {
        return false;  // condition (5)
      }
    }
    return any_shared;  // condition (4): ∃ shared dim with h_a ≻ h_b
  }

  qb::Corpus corpus_;
};

TEST_F(PaperSemanticsTest, LiteralDef3AcceptsTheAsymmetricCorner) {
  // o12 specializes sex (Male); o35's dataset lacks the dimension entirely.
  EXPECT_TRUE(LiteralCompl(testutil::kO12, testutil::kO35));
  EXPECT_FALSE(LiteralCompl(testutil::kO35, testutil::kO12));
  // The figure-3 pairs hold in both directions under the literal reading.
  EXPECT_TRUE(LiteralCompl(testutil::kO11, testutil::kO31));
  EXPECT_TRUE(LiteralCompl(testutil::kO31, testutil::kO11));
  EXPECT_TRUE(LiteralCompl(testutil::kO13, testutil::kO35));
  EXPECT_TRUE(LiteralCompl(testutil::kO35, testutil::kO13));
}

TEST_F(PaperSemanticsTest, EngineComplEqualsSymmetrizedLiteralDef3) {
  // The OCM-based engines implement the symmetric closure: Compl holds iff
  // the literal Def. 3 holds in *both* directions.
  const OccurrenceMatrix om(obs());
  CollectingSink sink;
  BaselineOptions options;
  options.selector = RelationshipSelector::ComplOnly();
  ASSERT_TRUE(RunBaseline(obs(), om, options, &sink).ok());
  std::set<std::pair<qb::ObsId, qb::ObsId>> engine(
      sink.complementary().begin(), sink.complementary().end());

  std::set<std::pair<qb::ObsId, qb::ObsId>> symmetrized;
  for (qb::ObsId a = 0; a < obs().size(); ++a) {
    for (qb::ObsId b = a + 1; b < obs().size(); ++b) {
      if (LiteralCompl(a, b) && LiteralCompl(b, a)) {
        symmetrized.insert({a, b});
      }
    }
  }
  EXPECT_EQ(engine, symmetrized);
  // And the asymmetric corner is the only one-directional literal pair.
  std::set<std::pair<qb::ObsId, qb::ObsId>> one_directional;
  for (qb::ObsId a = 0; a < obs().size(); ++a) {
    for (qb::ObsId b = 0; b < obs().size(); ++b) {
      if (a != b && LiteralCompl(a, b) && !LiteralCompl(b, a)) {
        one_directional.insert({a, b});
      }
    }
  }
  EXPECT_EQ(one_directional,
            (std::set<std::pair<qb::ObsId, qb::ObsId>>{
                {testutil::kO12, testutil::kO35}}));
}

TEST_F(PaperSemanticsTest, EngineFullMatchesLiteralDef4WithPaddingCaveat) {
  const OccurrenceMatrix om(obs());
  CollectingSink sink;
  BaselineOptions options;
  options.selector = RelationshipSelector::FullOnly();
  ASSERT_TRUE(RunBaseline(obs(), om, options, &sink).ok());
  std::set<std::pair<qb::ObsId, qb::ObsId>> engine(sink.full().begin(),
                                                   sink.full().end());
  // Engine-full implies literal Def. 4 (padding only *adds* constraints on
  // the non-shared dimensions, never removes the shared-dim ones).
  for (const auto& [a, b] : engine) {
    EXPECT_TRUE(LiteralFull(a, b)) << a << "->" << b;
  }
  // Conversely, a literal-full pair is engine-full unless a non-shared
  // dimension of o_a carries a non-root value (the padding constraint).
  for (qb::ObsId a = 0; a < obs().size(); ++a) {
    for (qb::ObsId b = 0; b < obs().size(); ++b) {
      if (a == b || !LiteralFull(a, b)) continue;
      bool blocked_by_padding = false;
      for (qb::DimId d = 0; d < space().num_dimensions(); ++d) {
        const bool shared = InSchema(a, d) && InSchema(b, d);
        if (shared) continue;
        if (!space().code_list(d).IsAncestorOrSelf(Value(a, d), Value(b, d))) {
          blocked_by_padding = true;
        }
      }
      EXPECT_EQ(engine.count({a, b}) != 0, !blocked_by_padding)
          << a << "->" << b;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
