// Tests for src/qb: cube space, observation set, corpus builder, validator,
// CSV import, RDF loader and exporter (including the round-trip).

#include <gtest/gtest.h>

#include "qb/corpus.h"
#include "qb/csv_importer.h"
#include "qb/cube_space.h"
#include "qb/exporter.h"
#include "qb/loader.h"
#include "qb/observation_set.h"
#include "qb/validate.h"
#include "rdf/turtle_parser.h"
#include "rdf/turtle_writer.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace qb {
namespace {

using testutil::MakeRunningExample;

// --- CubeSpace ----------------------------------------------------------------

TEST(CubeSpaceTest, RegistersDimensionsAndMeasures) {
  CubeSpace space;
  hierarchy::CodeList list("ALL");
  list.Add("a", 0).value();
  ASSERT_TRUE(list.Finalize().ok());
  auto d = space.AddDimension("dim:geo", std::move(list));
  ASSERT_TRUE(d.ok());
  auto m = space.AddMeasure("m:pop");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(space.num_dimensions(), 1u);
  EXPECT_EQ(space.num_measures(), 1u);
  EXPECT_EQ(space.dimension_iri(*d), "dim:geo");
  EXPECT_EQ(space.measure_iri(*m), "m:pop");
  EXPECT_EQ(*space.FindDimension("dim:geo"), *d);
  EXPECT_FALSE(space.FindDimension("dim:none").has_value());
  EXPECT_FALSE(space.FindMeasure("m:none").has_value());
}

TEST(CubeSpaceTest, RejectsDuplicates) {
  CubeSpace space;
  hierarchy::CodeList l1("ALL");
  ASSERT_TRUE(l1.Finalize().ok());
  ASSERT_TRUE(space.AddDimension("d", std::move(l1)).ok());
  hierarchy::CodeList l2("ALL");
  ASSERT_TRUE(l2.Finalize().ok());
  EXPECT_TRUE(space.AddDimension("d", std::move(l2)).status().IsAlreadyExists());
  ASSERT_TRUE(space.AddMeasure("m").ok());
  EXPECT_TRUE(space.AddMeasure("m").status().IsAlreadyExists());
}

TEST(CubeSpaceTest, RejectsUnfinalizedCodeList) {
  CubeSpace space;
  hierarchy::CodeList list("ALL");
  EXPECT_TRUE(space.AddDimension("d", std::move(list))
                  .status()
                  .IsFailedPrecondition());
}

// --- ObservationSet -------------------------------------------------------------

TEST(ObservationSetTest, RootPaddingForMissingDimensions) {
  Corpus corpus = MakeRunningExample();
  const ObservationSet& obs = *corpus.observations;
  const CubeSpace& space = *corpus.space;
  const DimId sex = *space.FindDimension(testutil::kSex);
  // o21 (D2) has no sex dimension: padded to root ("Total").
  EXPECT_EQ(obs.obs(testutil::kO21).dims[sex], hierarchy::kNoCode);
  EXPECT_EQ(obs.ValueOrRoot(testutil::kO21, sex), space.code_list(sex).root());
  // o12 has sex = Male.
  EXPECT_EQ(obs.ValueOrRoot(testutil::kO12, sex),
            *space.code_list(sex).Find("Male"));
}

TEST(ObservationSetTest, LevelsAndMeasureSharing) {
  Corpus corpus = MakeRunningExample();
  const ObservationSet& obs = *corpus.observations;
  const DimId area = *corpus.space->FindDimension(testutil::kRefArea);
  EXPECT_EQ(obs.LevelOf(testutil::kO11, area), 3u);  // Athens
  EXPECT_EQ(obs.LevelOf(testutil::kO21, area), 2u);  // Greece
  // o21 (unemployment+poverty) and o31 (unemployment) share a measure.
  EXPECT_TRUE(obs.SharesMeasure(testutil::kO21, testutil::kO31));
  // o11 (population) and o31 (unemployment) do not.
  EXPECT_FALSE(obs.SharesMeasure(testutil::kO11, testutil::kO31));
}

TEST(ObservationSetTest, DatasetBookkeeping) {
  Corpus corpus = MakeRunningExample();
  const ObservationSet& obs = *corpus.observations;
  EXPECT_EQ(obs.num_datasets(), 3u);
  EXPECT_EQ(obs.size(), 10u);
  EXPECT_EQ(obs.dataset(0).observations.size(), 3u);  // D1
  EXPECT_EQ(obs.dataset(2).observations.size(), 5u);  // D3
}

TEST(ObservationSetTest, RejectsOutOfSchemaValues) {
  Corpus corpus = MakeRunningExample();
  ObservationSet& obs = *corpus.observations;
  const DimId sex = *corpus.space->FindDimension(testutil::kSex);
  const MeasureId pop = *corpus.space->FindMeasure(testutil::kPopulation);
  // D3 (dataset 2) has no sex dimension and no population measure.
  EXPECT_TRUE(obs.AddObservation(2, "bad1", {{sex, 0}}, {})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(obs.AddObservation(2, "bad2", {}, {{pop, 1.0}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(obs.AddObservation(99, "bad3", {}, {})
                  .status()
                  .IsInvalidArgument());
}

// --- CorpusBuilder ---------------------------------------------------------------

TEST(CorpusBuilderTest, ErrorsOnUnknownNames) {
  CorpusBuilder b;
  EXPECT_TRUE(b.AddCode("nodim", "x", "y").IsNotFound());
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  EXPECT_TRUE(b.AddCode("d", "x", "noparent").IsNotFound());
  EXPECT_TRUE(b.AddDataset("D", {"other"}, {}).IsNotFound());
  EXPECT_TRUE(b.AddDataset("D", {"d"}, {"nomeasure"}).IsNotFound());
}

TEST(CorpusBuilderTest, BuildResolvesObservationsLazily) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  ASSERT_TRUE(b.AddDataset("D", {"d"}, {"m"}).ok());
  // Code added *after* the observation that references it: still fine,
  // resolution happens at Build().
  ASSERT_TRUE(b.AddObservation("D", "o1", {{"d", "x"}}, {{"m", 1.0}}).ok());
  ASSERT_TRUE(b.AddCode("d", "x", "ALL").ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->observations->size(), 1u);
}

TEST(CorpusBuilderTest, BuildFailsOnUnknownCode) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  ASSERT_TRUE(b.AddDataset("D", {"d"}, {"m"}).ok());
  ASSERT_TRUE(b.AddObservation("D", "o1", {{"d", "ghost"}}, {}).ok());
  EXPECT_TRUE(std::move(b).Build().status().IsNotFound());
}

TEST(CorpusBuilderTest, BuildFailsOnUnknownDataset) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddObservation("noDS", "o1", {}, {}).ok());
  EXPECT_TRUE(std::move(b).Build().status().IsNotFound());
}

TEST(CorpusBuilderTest, DuplicateDimensionFails) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  EXPECT_TRUE(b.AddDimension("d", "ALL").IsAlreadyExists());
}

// --- Validator --------------------------------------------------------------------

TEST(ValidateTest, CleanCorpusPasses) {
  Corpus corpus = MakeRunningExample();
  const ValidationReport report = ValidateCorpus(corpus);
  EXPECT_TRUE(report.ok()) << FormatReport(report);
}

TEST(ValidateTest, FlagsDuplicateKeys) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddCode("d", "x", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  ASSERT_TRUE(b.AddDataset("D", {"d"}, {"m"}).ok());
  ASSERT_TRUE(b.AddObservation("D", "o1", {{"d", "x"}}, {{"m", 1.0}}).ok());
  ASSERT_TRUE(b.AddObservation("D", "o2", {{"d", "x"}}, {{"m", 2.0}}).ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok());
  const ValidationReport report = ValidateCorpus(*corpus);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].kind, ValidationIssue::Kind::kDuplicateKey);
}

TEST(ValidateTest, FlagsEmptyDatasetAndNoMeasure) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddCode("d", "x", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  ASSERT_TRUE(b.AddDataset("Dempty", {"d"}, {"m"}).ok());
  ASSERT_TRUE(b.AddDataset("D", {"d"}, {"m"}).ok());
  ASSERT_TRUE(b.AddObservation("D", "o1", {{"d", "x"}}, {}).ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok());
  const ValidationReport report = ValidateCorpus(*corpus);
  bool saw_empty = false, saw_nomeasure = false;
  for (const auto& issue : report.issues) {
    saw_empty |= issue.kind == ValidationIssue::Kind::kEmptyDataset;
    saw_nomeasure |= issue.kind == ValidationIssue::Kind::kNoMeasure;
  }
  EXPECT_TRUE(saw_empty);
  EXPECT_TRUE(saw_nomeasure);
}

TEST(ValidateTest, FlagsUnusedDimension) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddCode("d", "x", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  ASSERT_TRUE(b.AddDataset("D", {"d"}, {"m"}).ok());
  ASSERT_TRUE(b.AddObservation("D", "o1", {}, {{"m", 1.0}}).ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok());
  const ValidationReport report = ValidateCorpus(*corpus);
  ASSERT_FALSE(report.ok());
  bool saw = false;
  for (const auto& issue : report.issues) {
    saw |= issue.kind == ValidationIssue::Kind::kUnusedDimension;
  }
  EXPECT_TRUE(saw);
}

// --- CSV import --------------------------------------------------------------------

TEST(CsvImporterTest, ImportsRowsAsObservations) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("dim:geo", "World").ok());
  ASSERT_TRUE(b.AddCode("dim:geo", "Greece", "World").ok());
  ASSERT_TRUE(b.AddCode("dim:geo", "Italy", "World").ok());
  ASSERT_TRUE(b.AddMeasure("m:pop").ok());

  auto table = ParseCsv("geo,pop\nGreece,10.7\nItaly,59.1\n");
  ASSERT_TRUE(table.ok());
  CsvDatasetSpec spec;
  spec.dataset_iri = "csv:D1";
  spec.columns = {{CsvColumnSpec::Role::kDimension, "dim:geo"},
                  {CsvColumnSpec::Role::kMeasure, "m:pop"}};
  ASSERT_TRUE(ImportCsvDataset(*table, spec, &b).ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->observations->size(), 2u);
  EXPECT_EQ(corpus->observations->obs(0).values[0].second, 10.7);
}

TEST(CsvImporterTest, RejectsNonNumericMeasure) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  auto table = ParseCsv("d,m\nALL,abc\n");
  ASSERT_TRUE(table.ok());
  CsvDatasetSpec spec;
  spec.dataset_iri = "D";
  spec.columns = {{CsvColumnSpec::Role::kDimension, "d"},
                  {CsvColumnSpec::Role::kMeasure, "m"}};
  EXPECT_TRUE(ImportCsvDataset(*table, spec, &b).IsParseError());
}

TEST(CsvImporterTest, UnknownCellValueFailsAtBuild) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  auto table = ParseCsv("d,m\nUnknownPlace,5\n");
  ASSERT_TRUE(table.ok());
  CsvDatasetSpec spec;
  spec.dataset_iri = "D";
  spec.columns = {{CsvColumnSpec::Role::kDimension, "d"},
                  {CsvColumnSpec::Role::kMeasure, "m"}};
  ASSERT_TRUE(ImportCsvDataset(*table, spec, &b).ok());
  EXPECT_TRUE(std::move(b).Build().status().IsNotFound());
}

TEST(CsvImporterTest, IgnoreColumnsAndEmptyCells) {
  CorpusBuilder b;
  ASSERT_TRUE(b.AddDimension("d", "ALL").ok());
  ASSERT_TRUE(b.AddCode("d", "x", "ALL").ok());
  ASSERT_TRUE(b.AddMeasure("m").ok());
  auto table = ParseCsv("d,junk,m\nx,zzz,5\nx2,zzz,\n");
  ASSERT_TRUE(table.ok());
  // Second row: empty measure cell is skipped; "x2" unknown would fail, so
  // use an ignored column trick: make d column value x for both rows.
  table->rows[1][0] = "x";
  CsvDatasetSpec spec;
  spec.dataset_iri = "D";
  spec.columns = {{CsvColumnSpec::Role::kDimension, "d"},
                  {CsvColumnSpec::Role::kIgnore, ""},
                  {CsvColumnSpec::Role::kMeasure, "m"}};
  ASSERT_TRUE(ImportCsvDataset(*table, spec, &b).ok());
  auto corpus = std::move(b).Build();
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->observations->size(), 2u);
  EXPECT_EQ(corpus->observations->obs(1).measure_mask, 0u);
}

// --- RDF loader / exporter ------------------------------------------------------

TEST(LoaderTest, LoadsMinimalCube) {
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .

e:geoScheme a skos:ConceptScheme .
e:World skos:inScheme e:geoScheme .
e:Greece skos:inScheme e:geoScheme ; skos:broader e:World .
e:geo a qb:DimensionProperty ; qb:codeList e:geoScheme .
e:pop a qb:MeasureProperty .

e:dsd a qb:DataStructureDefinition ;
  qb:component e:c1, e:c2 .
e:c1 qb:dimension e:geo .
e:c2 qb:measure e:pop .

e:ds a qb:DataSet ; qb:structure e:dsd .
e:o1 a qb:Observation ; qb:dataSet e:ds ; e:geo e:Greece ; e:pop 10.7 .
e:o2 a qb:Observation ; qb:dataSet e:ds ; e:geo e:World ; e:pop 7000.0 .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  auto corpus = LoadCorpusFromRdf(store);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_EQ(corpus->space->num_dimensions(), 1u);
  EXPECT_EQ(corpus->space->num_measures(), 1u);
  EXPECT_EQ(corpus->observations->size(), 2u);
  const DimId geo = *corpus->space->FindDimension("http://e/geo");
  const hierarchy::CodeList& list = corpus->space->code_list(geo);
  EXPECT_EQ(list.name(list.root()), "http://e/World");
  EXPECT_TRUE(list.Find("http://e/Greece").has_value());
}

TEST(LoaderTest, SynthesizesFlatCodeLists) {
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix e: <http://e/> .
e:dsd a qb:DataStructureDefinition ; qb:component e:c1, e:c2 .
e:c1 qb:dimension e:year .
e:c2 qb:measure e:pop .
e:ds a qb:DataSet ; qb:structure e:dsd .
e:o1 a qb:Observation ; qb:dataSet e:ds ; e:year e:Y2001 ; e:pop 5 .
e:o2 a qb:Observation ; qb:dataSet e:ds ; e:year e:Y2002 ; e:pop 6 .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  auto corpus = LoadCorpusFromRdf(store);
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  const DimId year = *corpus->space->FindDimension("http://e/year");
  EXPECT_EQ(corpus->space->code_list(year).size(), 3u);  // ALL + 2 years
  EXPECT_EQ(corpus->space->code_list(year).max_level(), 1u);
}

TEST(LoaderTest, AttributesBecomeDimensionsWhenConfigured) {
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix e: <http://e/> .
e:dsd a qb:DataStructureDefinition ; qb:component e:c1, e:c2, e:c3 .
e:c1 qb:dimension e:geo .
e:c2 qb:measure e:pop .
e:c3 qb:attribute e:unit .
e:ds a qb:DataSet ; qb:structure e:dsd .
e:o1 a qb:Observation ; qb:dataSet e:ds ; e:geo e:GR ; e:unit e:Persons ; e:pop 5 .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  auto with = LoadCorpusFromRdf(store);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->space->num_dimensions(), 2u);
  LoaderOptions opt;
  opt.attributes_as_dimensions = false;
  auto without = LoadCorpusFromRdf(store, opt);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->space->num_dimensions(), 1u);
}

TEST(LoaderTest, FailsOnMissingStructure) {
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix e: <http://e/> .
e:ds a qb:DataSet .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  EXPECT_TRUE(LoadCorpusFromRdf(store).status().IsParseError());
}

TEST(LoaderTest, FailsOnObservationWithoutDataset) {
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix e: <http://e/> .
e:dsd a qb:DataStructureDefinition ; qb:component e:c1 .
e:c1 qb:measure e:pop .
e:ds a qb:DataSet ; qb:structure e:dsd .
e:o1 a qb:Observation ; e:pop 5 .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  EXPECT_TRUE(LoadCorpusFromRdf(store).status().IsParseError());
}

TEST(LoaderTest, FailsOnNonNumericMeasure) {
  const char kDoc[] = R"(
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix e: <http://e/> .
e:dsd a qb:DataStructureDefinition ; qb:component e:c1 .
e:c1 qb:measure e:pop .
e:ds a qb:DataSet ; qb:structure e:dsd .
e:o1 a qb:Observation ; qb:dataSet e:ds ; e:pop "not-a-number" .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseTurtle(kDoc, &store).ok());
  EXPECT_TRUE(LoadCorpusFromRdf(store).status().IsParseError());
}

TEST(LoaderTest, FailsOnEmptyGraph) {
  rdf::TripleStore store;
  EXPECT_TRUE(LoadCorpusFromRdf(store).status().IsNotFound());
}

TEST(ExporterTest, RoundTripPreservesStructure) {
  Corpus original = MakeRunningExample();
  rdf::TripleStore store;
  ASSERT_TRUE(ExportCorpusToRdf(original, &store).ok());
  EXPECT_GT(store.size(), 50u);

  auto reloaded = LoadCorpusFromRdf(store);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->space->num_dimensions(),
            original.space->num_dimensions());
  EXPECT_EQ(reloaded->space->num_measures(), original.space->num_measures());
  EXPECT_EQ(reloaded->observations->size(), original.observations->size());
  EXPECT_EQ(reloaded->observations->num_datasets(),
            original.observations->num_datasets());
  // Code-list sizes survive (names are minted IRIs but structure is equal).
  for (DimId d = 0; d < original.space->num_dimensions(); ++d) {
    const std::string& iri = original.space->dimension_iri(d);
    const std::string minted = "urn:rdfcube:dim:" + iri;
    auto rd = reloaded->space->FindDimension(minted);
    ASSERT_TRUE(rd.has_value()) << minted;
    EXPECT_EQ(reloaded->space->code_list(*rd).size(),
              original.space->code_list(d).size());
    EXPECT_EQ(reloaded->space->code_list(*rd).max_level(),
              original.space->code_list(d).max_level());
  }
}

TEST(ExporterTest, SerializedTurtleReloads) {
  Corpus original = MakeRunningExample();
  rdf::TripleStore store;
  ASSERT_TRUE(ExportCorpusToRdf(original, &store).ok());
  const std::string text = rdf::WriteNTriples(store);
  rdf::TripleStore reparsed;
  ASSERT_TRUE(rdf::ParseTurtle(text, &reparsed).ok());
  EXPECT_EQ(reparsed.size(), store.size());
  auto corpus = LoadCorpusFromRdf(reparsed);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->observations->size(), original.observations->size());
}

}  // namespace
}  // namespace qb
}  // namespace rdfcube
