// Race-stress suite: hammers every concurrent surface of the tree so that a
// ThreadSanitizer build (RDFCUBE_SANITIZE=thread, scripts/check_sanitizers.sh)
// has real contention to observe. The assertions also hold under the plain
// build — results must match the single-threaded reference regardless of
// interleaving — but the point of this file is the happens-before coverage:
// ThreadPool submit/wait/error paths, TryParallelFor early-abort, the
// fault-injector's global registry under concurrent firing, parallel and
// distributed masking racing each other, and checkpoint save/restore storms
// on shared paths.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/baseline.h"
#include "core/cube_masking.h"
#include "core/distributed.h"
#include "core/incremental.h"
#include "core/lattice.h"
#include "core/occurrence_matrix.h"
#include "core/parallel_masking.h"
#include "core/relationship.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/corpus.h"
#include "server/admission.h"
#include "server/snapshot_store.h"
#include "tests/test_corpus.h"
#include "util/fault.h"
#include "base/status.h"
#include "util/thread_pool.h"

namespace rdfcube {
namespace core {
namespace {

using qb::ObsId;
using testutil::MakeRandomCorpus;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Canonicalized relationship sets, for cross-method equality.
struct Snapshot {
  std::set<std::pair<ObsId, ObsId>> full;
  std::set<std::pair<ObsId, ObsId>> compl_pairs;
  std::set<std::tuple<ObsId, ObsId, int>> partial;

  static Snapshot From(const CollectingSink& sink) {
    Snapshot s;
    for (const auto& p : sink.full()) s.full.insert(p);
    for (const auto& p : sink.complementary()) s.compl_pairs.insert(p);
    for (const auto& p : sink.partial()) {
      s.partial.insert({p.a, p.b, static_cast<int>(p.degree * 1000 + 0.5)});
    }
    return s;
  }
  bool operator==(const Snapshot& o) const {
    return full == o.full && compl_pairs == o.compl_pairs &&
           partial == o.partial;
  }
};

Snapshot BaselineSnapshot(const qb::ObservationSet& obs) {
  const OccurrenceMatrix om(obs);
  CollectingSink sink;
  BaselineOptions options;
  EXPECT_TRUE(RunBaseline(obs, om, options, &sink).ok());
  return Snapshot::From(sink);
}

// --- ThreadPool under contention ---------------------------------------------

TEST(ThreadPoolRaceTest, ConcurrentSubmittersSeeEveryTaskExactlyOnce) {
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kTasksEach = 200;
  ThreadPool pool(3);
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> submitters;
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed] {
      for (std::size_t i = 0; i < kTasksEach; ++i) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.Wait();
  EXPECT_EQ(executed.load(), kSubmitters * kTasksEach);
  EXPECT_TRUE(pool.TakeError().ok());
}

TEST(ThreadPoolRaceTest, ReportErrorRacesTakeErrorWithoutTearing) {
  ThreadPool pool(3);
  constexpr std::size_t kTasks = 300;
  for (std::size_t i = 0; i < kTasks; ++i) {
    pool.Submit([&pool, i] {
      pool.ReportError(Status::Internal("task " + std::to_string(i)));
    });
  }
  // Drain errors concurrently with the reporting tasks. Every drained status
  // must be either OK or a complete task message — a torn read would trip
  // TSan and likely produce garbage text.
  std::size_t drained = 0;
  for (std::size_t spin = 0; spin < 1000; ++spin) {
    const Status st = pool.TakeError();
    if (!st.ok()) {
      ++drained;
      EXPECT_NE(st.message().find("task "), std::string::npos);
    }
  }
  pool.Wait();
  const Status last = pool.TakeError();
  if (!last.ok()) ++drained;
  EXPECT_GE(drained, 1u);
  // Once drained, the pool is clean again.
  EXPECT_TRUE(pool.TakeError().ok());
}

TEST(ThreadPoolRaceTest, ConcurrentTryParallelForCallersKeepErrorsSeparate) {
  ThreadPool pool(3);
  constexpr std::size_t kCallers = 4;
  std::vector<Status> results(kCallers, Status::OK());
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &results, c] {
      results[c] = TryParallelFor(&pool, 64, [c](std::size_t i) -> Status {
        // Caller 0 fails partway; the others run to completion.
        if (c == 0 && i == 13) {
          return Status::InvalidArgument("caller 0 fails at 13");
        }
        return Status::OK();
      });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_TRUE(results[0].IsInvalidArgument()) << results[0].ToString();
  for (std::size_t c = 1; c < kCallers; ++c) {
    EXPECT_TRUE(results[c].ok()) << "caller " << c << ": "
                                 << results[c].ToString();
  }
}

TEST(ThreadPoolRaceTest, TryParallelForEarlyAbortUnderContention) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> started{0};
    const Status st = TryParallelFor(&pool, 512, [&started](std::size_t i) {
      started.fetch_add(1, std::memory_order_relaxed);
      return i == 0 ? Status::OutOfRange("abort") : Status::OK();
    });
    EXPECT_TRUE(st.IsOutOfRange()) << st.ToString();
    // The early-abort flag must actually skip work: with 512 indices and a
    // failure on the very first one, at least the tail of some shard is
    // skipped. (Not a strict bound — scheduling may run shards before the
    // flag propagates — but it must never exceed the total.)
    EXPECT_LE(started.load(), 512u);
  }
}

TEST(ThreadPoolRaceTest, ThrownExceptionsUnderContentionSurfaceOnce) {
  ThreadPool pool(3);
  const Status st = TryParallelFor(&pool, 128, [](std::size_t i) -> Status {
    if (i % 32 == 7) throw std::runtime_error("thrown under contention");
    return Status::OK();
  });
  EXPECT_TRUE(st.IsInternal()) << st.ToString();
  // The error was taken by the returning call; the pool is clean after.
  EXPECT_TRUE(pool.TakeError().ok());
}

// --- FaultInjector under concurrent firing -----------------------------------

TEST(FaultInjectorRaceTest, CountersAndLogStayConsistent) {
  FaultInjector injector(7);
  injector.ArmProbability("race.a", 0.5);
  injector.ArmProbability("race.b", 0.25);
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kCallsEach = 500;
  std::atomic<uint64_t> observed_fires{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&injector, &observed_fires, t] {
      const std::string point = (t % 2 == 0) ? "race.a" : "race.b";
      for (std::size_t i = 0; i < kCallsEach; ++i) {
        if (injector.ShouldFail(point)) {
          observed_fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(injector.calls("race.a"), 2 * kCallsEach);
  EXPECT_EQ(injector.calls("race.b"), 2 * kCallsEach);
  EXPECT_EQ(injector.total_fired(), observed_fires.load());
  EXPECT_EQ(injector.log().size(), observed_fires.load());
}

TEST(FaultInjectorRaceTest, ArmDisarmRacesShouldFail) {
  FaultInjector injector(11);
  constexpr uint64_t kCalls = 2000;
  std::thread firing([&injector] {
    for (uint64_t i = 0; i < kCalls; ++i) {
      (void)injector.ShouldFail("race.toggle");
    }
  });
  for (int i = 0; i < 200; ++i) {
    injector.ArmProbability("race.toggle", 0.5);
    injector.Disarm("race.toggle");
  }
  firing.join();
  EXPECT_EQ(injector.calls("race.toggle"), kCalls);
}

// --- Parallel masking racing itself ------------------------------------------

TEST(ParallelMaskingRaceTest, ConcurrentRunsMatchSingleThreadedReference) {
  qb::Corpus corpus = MakeRandomCorpus(21, 50);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot reference = BaselineSnapshot(obs);
  const Lattice lattice(obs);

  constexpr std::size_t kRunners = 3;
  std::vector<Snapshot> results(kRunners);
  std::vector<Status> statuses(kRunners, Status::OK());
  std::vector<std::thread> runners;
  for (std::size_t r = 0; r < kRunners; ++r) {
    runners.emplace_back([&obs, &lattice, &results, &statuses, r] {
      CollectingSink sink;
      ParallelMaskingOptions options;
      options.num_threads = 3;
      statuses[r] = RunCubeMaskingParallel(obs, lattice, options, &sink);
      results[r] = Snapshot::From(sink);
    });
  }
  for (std::thread& t : runners) t.join();
  for (std::size_t r = 0; r < kRunners; ++r) {
    ASSERT_TRUE(statuses[r].ok()) << statuses[r].ToString();
    EXPECT_TRUE(results[r] == reference) << "runner " << r;
  }
}

// --- Distributed recovery racing reassignment --------------------------------

TEST(DistributedRaceTest, ConcurrentFaultyRunsEachRecoverExactly) {
  qb::Corpus corpus = MakeRandomCorpus(31, 40);
  const qb::ObservationSet& obs = *corpus.observations;
  const Snapshot reference = BaselineSnapshot(obs);

  // One process-global injector shared by every concurrent run: the crash /
  // drop / duplicate points fire from several driver threads at once, racing
  // retries and reassignment bookkeeping against each other.
  FaultInjector injector(13);
  injector.ArmProbability(kFaultWorkerCrash, 0.15);
  injector.ArmProbability(kFaultMessageDrop, 0.05);
  injector.ArmProbability(kFaultMessageDuplicate, 0.05);
  ScopedFaultInjection scope(&injector);

  constexpr std::size_t kRunners = 3;
  std::vector<Snapshot> results(kRunners);
  std::vector<Status> statuses(kRunners, Status::OK());
  std::vector<DistributedStats> stats(kRunners);
  std::vector<std::thread> runners;
  for (std::size_t r = 0; r < kRunners; ++r) {
    runners.emplace_back([&obs, &results, &statuses, &stats, r] {
      CollectingSink sink;
      DistributedOptions options;
      options.num_workers = 2 + r;
      statuses[r] = RunDistributedMasking(obs, options, &sink, &stats[r]);
      results[r] = Snapshot::From(sink);
    });
  }
  for (std::thread& t : runners) t.join();
  std::size_t total_crashes = 0;
  for (std::size_t r = 0; r < kRunners; ++r) {
    ASSERT_TRUE(statuses[r].ok()) << statuses[r].ToString();
    EXPECT_TRUE(results[r] == reference) << "runner " << r;
    EXPECT_EQ(stats[r].worker_crashes,
              stats[r].task_retries + stats[r].workers_lost);
    total_crashes += stats[r].worker_crashes;
  }
  EXPECT_GT(total_crashes, 0u);
}

// --- Incremental checkpointing storms ----------------------------------------

class IncrementalCheckpointRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = MakeRandomCorpus(41, 40);
    obs_ = corpus_.observations.get();
    engine_ = std::make_unique<IncrementalEngine>(
        obs_, RelationshipSelector::All());
    for (ObsId id = 0; id < static_cast<ObsId>(obs_->size()); ++id) {
      ASSERT_TRUE(engine_->OnObservationAdded(id).ok());
    }
  }

  qb::Corpus corpus_;
  const qb::ObservationSet* obs_ = nullptr;
  std::unique_ptr<IncrementalEngine> engine_;
};

TEST_F(IncrementalCheckpointRaceTest, ConcurrentSavesToOnePathAllSucceed) {
  const std::string path = TempPath("race_ckpt_shared.bin");
  constexpr std::size_t kSavers = 4;
  constexpr std::size_t kSavesEach = 8;
  std::vector<Status> statuses(kSavers * kSavesEach, Status::OK());
  std::vector<std::thread> savers;
  for (std::size_t s = 0; s < kSavers; ++s) {
    savers.emplace_back([this, &path, &statuses, s] {
      for (std::size_t i = 0; i < kSavesEach; ++i) {
        statuses[s * kSavesEach + i] = engine_->SaveCheckpoint(path);
      }
    });
  }
  for (std::thread& t : savers) t.join();
  // Every save must succeed: AtomicWriteFile uses per-call temp names, so
  // concurrent writers cannot steal or truncate each other's staging file.
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    EXPECT_TRUE(statuses[i].ok()) << "save " << i << ": "
                                  << statuses[i].ToString();
  }
  // And the surviving file is a complete snapshot, never a torn interleave.
  IncrementalEngine restored(obs_, RelationshipSelector::All());
  ASSERT_TRUE(restored.RestoreFromCheckpoint(path).ok());
  EXPECT_EQ(restored.num_full(), engine_->num_full());
  EXPECT_EQ(restored.num_partial(), engine_->num_partial());
  EXPECT_EQ(restored.num_complementary(), engine_->num_complementary());
}

TEST_F(IncrementalCheckpointRaceTest, RestoresRaceSavesWithoutTornReads) {
  const std::string path = TempPath("race_ckpt_rw.bin");
  ASSERT_TRUE(engine_->SaveCheckpoint(path).ok());
  std::atomic<bool> stop{false};
  std::thread writer([this, &path, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const Status st = engine_->SaveCheckpoint(path);
      ASSERT_TRUE(st.ok()) << st.ToString();
    }
  });
  // Readers must always observe a complete snapshot: the rename-into-place
  // protocol means there is never a half-written file at `path`.
  for (int i = 0; i < 12; ++i) {
    IncrementalEngine restored(obs_, RelationshipSelector::All());
    const Status st = restored.RestoreFromCheckpoint(path);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(restored.num_full(), engine_->num_full());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST_F(IncrementalCheckpointRaceTest, ConcurrentSerializeStateIsStable) {
  const std::string reference = engine_->SerializeState();
  constexpr std::size_t kReaders = 4;
  std::vector<std::string> states(kReaders);
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([this, &states, r] {
      states[r] = engine_->SerializeState();
    });
  }
  for (std::thread& t : readers) t.join();
  for (const std::string& s : states) EXPECT_EQ(s, reference);
}

// --- Observability primitives under contention -------------------------------
// The obs layer promises lock-free hot paths (relaxed atomics in Counter /
// Gauge / Histogram, per-thread rings for spans). These tests give TSan real
// interleavings to chew on and assert the arithmetic survives them.

TEST(ObsRaceTest, ConcurrentCounterIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  Result<obs::Counter*> counter =
      registry.GetCounter("rdfcube_race_counter_total", "h");
  ASSERT_TRUE(counter.ok());
  constexpr std::size_t kThreads = 4;
  constexpr uint64_t kIncrementsEach = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kIncrementsEach; ++i) {
        (*counter)->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ((*counter)->value(), kThreads * kIncrementsEach);
}

TEST(ObsRaceTest, RegistrationRacesReturnOneInstance) {
  obs::MetricsRegistry registry;
  constexpr std::size_t kThreads = 4;
  constexpr uint64_t kIncrementsEach = 1000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread races the first registration of the same name; all must
      // land on the same instance.
      Result<obs::Counter*> counter =
          registry.GetCounter("rdfcube_race_shared_total", "h");
      ASSERT_TRUE(counter.ok());
      for (uint64_t i = 0; i < kIncrementsEach; ++i) {
        (*counter)->Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Result<obs::Counter*> counter =
      registry.GetCounter("rdfcube_race_shared_total", "h");
  ASSERT_TRUE(counter.ok());
  EXPECT_EQ((*counter)->value(), kThreads * kIncrementsEach);
}

TEST(ObsRaceTest, ConcurrentHistogramObservationsStayConsistent) {
  obs::MetricsRegistry registry;
  Result<obs::Histogram*> histogram = registry.GetHistogram(
      "rdfcube_race_seconds", "h", {1.0, 2.0, 4.0});
  ASSERT_TRUE(histogram.ok());
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kObservationsEach = 4000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      // Thread t observes the constant t+0.5: buckets and the CAS-accumulated
      // sum are then exactly predictable despite arbitrary interleaving.
      const double value = static_cast<double>(t) + 0.5;
      for (std::size_t i = 0; i < kObservationsEach; ++i) {
        (*histogram)->Observe(value);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ((*histogram)->count(), kThreads * kObservationsEach);
  // Sum of (0.5 + 1.5 + 2.5 + 3.5) * kObservationsEach, exact in doubles.
  EXPECT_DOUBLE_EQ((*histogram)->sum(), 8.0 * kObservationsEach);
  const std::vector<uint64_t> buckets = (*histogram)->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  // 0.5 -> le=1, 1.5 -> le=2, 2.5 -> le=4, 3.5 -> le=4.
  EXPECT_EQ(buckets[0], kObservationsEach);
  EXPECT_EQ(buckets[1], kObservationsEach);
  EXPECT_EQ(buckets[2], 2 * kObservationsEach);
  EXPECT_EQ(buckets[3], 0u);
}

TEST(ObsRaceTest, SpansOnManyThreadsRaceSnapshotAndClear) {
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  collector.Enable(/*ring_capacity=*/256);
  std::atomic<bool> stop{false};
  constexpr std::size_t kSpanners = 3;
  std::vector<std::thread> spanners;
  for (std::size_t t = 0; t < kSpanners; ++t) {
    spanners.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::TraceSpan outer("race/outer");
        obs::TraceSpan inner("race/inner");
      }
    });
  }
  // Snapshot and Clear race the recording threads; every event read out must
  // be internally consistent (never a torn name / half-written duration).
  for (int i = 0; i < 50; ++i) {
    for (const obs::SpanEvent& e : collector.Snapshot()) {
      EXPECT_TRUE(e.name == "race/outer" || e.name == "race/inner") << e.name;
      EXPECT_GE(e.duration_us, e.self_us);
    }
    if (i % 10 == 9) collector.Clear();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : spanners) t.join();
  collector.Disable();
  (void)collector.dropped();  // bounded rings may have overwritten; just read
}

// --- Server admission queue under contention ---------------------------------

TEST(ServerRaceStressTest, AdmissionQueueConservesEveryAdmittedJob) {
  // N producers push, M consumers pop-and-run, then the queue closes while
  // both sides are still hot. The conservation law: every job whose TryPush
  // returned kAdmitted runs exactly once — none dropped, none duplicated.
  server::AdmissionQueue queue(16);
  std::atomic<uint64_t> admitted{0}, shed{0}, closed{0}, executed{0};
  std::atomic<bool> producers_done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 3000; ++i) {
        switch (queue.TryPush(
            [&] { executed.fetch_add(1, std::memory_order_relaxed); })) {
          case server::Admission::kAdmitted:
            admitted.fetch_add(1, std::memory_order_relaxed);
            break;
          case server::Admission::kShed:
            shed.fetch_add(1, std::memory_order_relaxed);
            break;
          case server::Admission::kClosed:
            closed.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        auto job = queue.Pop(Deadline(0.05));
        if (job.has_value()) {
          (*job)();
        } else if (queue.closed() ||
                   producers_done.load(std::memory_order_acquire)) {
          // Drain whatever is left, then quit.
          while ((job = queue.Pop(Deadline(0.0))).has_value()) (*job)();
          return;
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  for (std::thread& t : consumers) t.join();
  queue.Close();
  EXPECT_EQ(executed.load(), admitted.load());
  EXPECT_EQ(admitted.load() + shed.load() + closed.load(), 4u * 3000u);
  EXPECT_EQ(queue.Depth(), 0u);
}

TEST(ServerRaceStressTest, AdmissionQueueCloseStormNeverLosesAdmitted) {
  // Close() races pushes and pops; admitted jobs still run exactly once.
  for (int round = 0; round < 20; ++round) {
    server::AdmissionQueue queue(8);
    std::atomic<uint64_t> admitted{0}, executed{0};
    std::vector<std::thread> pushers;
    for (int p = 0; p < 3; ++p) {
      pushers.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          if (queue.TryPush([&] {
                executed.fetch_add(1, std::memory_order_relaxed);
              }) == server::Admission::kAdmitted) {
            admitted.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    std::thread popper([&] {
      // Pop until the queue reports closed-and-empty.
      while (auto job = queue.Pop(Deadline(0.02))) (*job)();
      while (auto job = queue.Pop(Deadline(0.0))) (*job)();
    });
    std::thread closer([&] { queue.Close(); });
    for (std::thread& t : pushers) t.join();
    closer.join();
    popper.join();
    // The popper may have quit on its deadline before draining; finish here.
    while (auto job = queue.Pop(Deadline(0.0))) (*job)();
    EXPECT_EQ(executed.load(), admitted.load()) << "round " << round;
  }
}

// --- Snapshot store swap storm -----------------------------------------------

TEST(ServerRaceStressTest, SnapshotStoreSwapStormServesConsistentViews) {
  // A publisher flips between two prebuilt snapshots while readers grab the
  // current pointer and query it. Torn publication would show up as a
  // version/fingerprint pair that matches neither snapshot, a query crash,
  // or (under TSan) a data race on the swap.
  qb::Corpus corpus_a = MakeRandomCorpus(51, 40);
  qb::Corpus corpus_b = MakeRandomCorpus(52, 40);
  core::RelationshipSnapshot::BuildOptions options;
  options.version = 1;
  auto snap_a =
      core::RelationshipSnapshot::Build(std::move(corpus_a), options);
  ASSERT_TRUE(snap_a.ok());
  options.version = 2;
  auto snap_b =
      core::RelationshipSnapshot::Build(std::move(corpus_b), options);
  ASSERT_TRUE(snap_b.ok());
  const uint64_t fp_a = (*snap_a)->fingerprint();
  const uint64_t fp_b = (*snap_b)->fingerprint();
  ASSERT_NE(fp_a, fp_b);

  server::SnapshotStore store;
  store.Publish(snap_a.value());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const server::SnapshotPtr snap = store.Current();
        ASSERT_NE(snap, nullptr);
        const uint64_t version = snap->version();
        const uint64_t fingerprint = snap->fingerprint();
        // The pair is atomic: version 1 always carries A's fingerprint,
        // version 2 always B's.
        EXPECT_TRUE((version == 1 && fingerprint == fp_a) ||
                    (version == 2 && fingerprint == fp_b))
            << "torn snapshot: v" << version;
        // The snapshot stays fully usable even after being unpublished.
        auto ids = snap->Containers(static_cast<qb::ObsId>(reads.load() % 40),
                                    Deadline());
        EXPECT_TRUE(ids.ok());
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread publisher([&] {
    for (int i = 0; i < 2000; ++i) {
      store.Publish(i % 2 == 0 ? snap_b.value() : snap_a.value());
    }
    stop.store(true, std::memory_order_relaxed);
  });
  publisher.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
}

// --- Lock-order stress (TSan deadlock detection) ------------------------------
// scripts/check_sanitizers.sh runs this binary with
// TSAN_OPTIONS=detect_deadlocks=1: TSan builds a runtime lock-order graph
// from the interleavings below — the dynamic twin of the static gate
// (rdfcube_callgraph lock-order-cycle vs tools/lock_order.txt, DESIGN.md
// §5i). These tests deliberately hold several unrelated Mutexes hot at
// once, in every combination the tree actually uses, so an order inversion
// introduced anywhere in AdmissionQueue / SnapshotStore / TraceCollector
// shows up as a reported deadlock cycle with both acquisition stacks.

TEST(LockOrderStressTest, MixedLockSurfacesKeepOneGlobalOrder) {
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  collector.Enable(/*ring_capacity=*/256);
  server::AdmissionQueue queue(16);
  server::SnapshotStore store;
  qb::Corpus corpus = MakeRandomCorpus(61, 30);
  core::RelationshipSnapshot::BuildOptions options;
  options.version = 7;
  auto snap = core::RelationshipSnapshot::Build(std::move(corpus), options);
  ASSERT_TRUE(snap.ok());
  store.Publish(snap.value());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> admitted{0}, executed{0};

  // Producers: each admitted job publishes + reads the snapshot store and
  // records a trace span. AdmissionQueue releases its mutex before handing
  // the job to the consumer, so the job's own acquisitions (store.mu_, the
  // span's ThreadTrace::mu) must never nest under the queue lock — exactly
  // the ordering TSan verifies while the consumers below also block inside
  // Pop's condvar wait on the same mutex.
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 1500; ++i) {
        if (queue.TryPush([&] {
              obs::TraceSpan span("lockstress/job");
              store.Publish(snap.value());
              const server::SnapshotPtr current = store.Current();
              EXPECT_NE(current, nullptr);
              executed.fetch_add(1, std::memory_order_relaxed);
            }) == server::Admission::kAdmitted) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        if (auto job = queue.Pop(Deadline(0.01))) (*job)();
      }
      while (auto job = queue.Pop(Deadline(0.0))) (*job)();
    });
  }
  // Registry walker: Snapshot()/Clear() exercise the one sanctioned nesting
  // in the tree (registry_mu_ -> ThreadTrace::mu) against the span-recording
  // jobs above, interleaved with the queue and store locks.
  std::thread walker([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)collector.Snapshot();
      collector.Clear();
    }
  });
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : consumers) t.join();
  walker.join();
  while (auto job = queue.Pop(Deadline(0.0))) (*job)();
  queue.Close();
  collector.Disable();
  EXPECT_EQ(executed.load(), admitted.load());
  EXPECT_GT(executed.load(), 0u);
}

TEST(LockOrderStressTest, CollectorLifecycleStormNeverInvertsRegistryOrder) {
  // Enable/Disable/Clear resize and walk the per-thread rings under
  // registry_mu_ while spans take only their own ThreadTrace::mu. The
  // reverse nesting (ring lock -> registry lock) must never occur; with
  // detect_deadlocks=1 TSan proves it over thousands of interleavings.
  obs::TraceCollector& collector = obs::TraceCollector::Global();
  std::atomic<bool> stop{false};
  std::vector<std::thread> spanners;
  for (int t = 0; t < 3; ++t) {
    spanners.emplace_back([&stop] {
      while (!stop.load(std::memory_order_acquire)) {
        obs::TraceSpan outer("lockstress/outer");
        obs::TraceSpan inner("lockstress/inner");
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    collector.Enable(/*ring_capacity=*/(i % 2 == 0) ? 64 : 256);
    (void)collector.Snapshot();
    if (i % 5 == 4) collector.Clear();
    if (i % 25 == 24) collector.Disable();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : spanners) t.join();
  collector.Disable();
  (void)collector.dropped();
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
