// Unit tests for src/rdf: terms, dictionary, triple store pattern matching,
// Turtle parsing (valid + malformed inputs), and serialization round-trips.

#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/turtle_parser.h"
#include "rdf/turtle_writer.h"
#include "rdf/vocab.h"

namespace rdfcube {
namespace rdf {
namespace {

// --- Term ------------------------------------------------------------------

TEST(TermTest, Kinds) {
  EXPECT_TRUE(Term::Iri("http://x").IsIri());
  EXPECT_TRUE(Term::Literal("v").IsLiteral());
  EXPECT_TRUE(Term::Blank("b").IsBlank());
}

TEST(TermTest, EqualityDistinguishesDatatypeAndLang) {
  EXPECT_EQ(Term::Literal("5"), Term::Literal("5"));
  EXPECT_NE(Term::Literal("5"),
            Term::TypedLiteral("5", std::string(vocab::kXsdInteger)));
  EXPECT_NE(Term::LangLiteral("x", "en"), Term::LangLiteral("x", "el"));
  EXPECT_NE(Term::Iri("a"), Term::Literal("a"));
}

TEST(TermTest, ToStringRendering) {
  EXPECT_EQ(Term::Iri("http://x").ToString(), "<http://x>");
  EXPECT_EQ(Term::Blank("b1").ToString(), "_:b1");
  EXPECT_EQ(Term::Literal("hi").ToString(), "\"hi\"");
  EXPECT_EQ(Term::LangLiteral("hi", "en").ToString(), "\"hi\"@en");
  EXPECT_EQ(Term::TypedLiteral("5", "http://dt").ToString(),
            "\"5\"^^<http://dt>");
}

TEST(TermTest, ToStringEscapes) {
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToString(), "\"a\\\"b\\\\c\\nd\"");
}

// --- Dictionary --------------------------------------------------------------

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.Intern(Term::Iri("http://a"));
  const TermId b = dict.Intern(Term::Iri("http://b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(Term::Iri("http://a")), a);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Get(a).value(), "http://a");
}

TEST(DictionaryTest, FindMissing) {
  Dictionary dict;
  EXPECT_FALSE(dict.Find(Term::Iri("http://nope")).has_value());
}

// --- TripleStore ---------------------------------------------------------------

class TripleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = store_.dictionary().Intern(Term::Iri("s1"));
    s2_ = store_.dictionary().Intern(Term::Iri("s2"));
    p1_ = store_.dictionary().Intern(Term::Iri("p1"));
    p2_ = store_.dictionary().Intern(Term::Iri("p2"));
    o1_ = store_.dictionary().Intern(Term::Iri("o1"));
    o2_ = store_.dictionary().Intern(Term::Iri("o2"));
    store_.InsertEncoded({s1_, p1_, o1_});
    store_.InsertEncoded({s1_, p2_, o2_});
    store_.InsertEncoded({s2_, p1_, o1_});
    store_.InsertEncoded({s2_, p1_, o2_});
  }
  TripleStore store_;
  TermId s1_, s2_, p1_, p2_, o1_, o2_;
};

TEST_F(TripleStoreTest, DeduplicatesInserts) {
  EXPECT_EQ(store_.size(), 4u);
  EXPECT_FALSE(store_.InsertEncoded({s1_, p1_, o1_}));
  EXPECT_EQ(store_.size(), 4u);
}

TEST_F(TripleStoreTest, MatchBySubject) {
  EXPECT_EQ(store_.MatchAll(s1_, kNoTerm, kNoTerm).size(), 2u);
  EXPECT_EQ(store_.MatchAll(s2_, kNoTerm, kNoTerm).size(), 2u);
}

TEST_F(TripleStoreTest, MatchByPredicate) {
  EXPECT_EQ(store_.MatchAll(kNoTerm, p1_, kNoTerm).size(), 3u);
  EXPECT_EQ(store_.MatchAll(kNoTerm, p2_, kNoTerm).size(), 1u);
}

TEST_F(TripleStoreTest, MatchByObject) {
  EXPECT_EQ(store_.MatchAll(kNoTerm, kNoTerm, o1_).size(), 2u);
}

TEST_F(TripleStoreTest, MatchFullyBound) {
  EXPECT_EQ(store_.MatchAll(s2_, p1_, o2_).size(), 1u);
  EXPECT_EQ(store_.MatchAll(s2_, p2_, o2_).size(), 0u);
}

TEST_F(TripleStoreTest, MatchUnbound) {
  EXPECT_EQ(store_.MatchAll(kNoTerm, kNoTerm, kNoTerm).size(), 4u);
}

TEST_F(TripleStoreTest, MatchPartialCombos) {
  EXPECT_EQ(store_.MatchAll(s2_, p1_, kNoTerm).size(), 2u);
  EXPECT_EQ(store_.MatchAll(kNoTerm, p1_, o1_).size(), 2u);
  EXPECT_EQ(store_.MatchAll(s1_, kNoTerm, o2_).size(), 1u);
}

TEST_F(TripleStoreTest, EarlyTermination) {
  int count = 0;
  store_.Match(kNoTerm, kNoTerm, kNoTerm, [&count](const Triple&) {
    ++count;
    return count < 2;
  });
  EXPECT_EQ(count, 2);
}

TEST_F(TripleStoreTest, ConvenienceAccessors) {
  EXPECT_EQ(store_.ObjectOf(s1_, p2_), o2_);
  EXPECT_EQ(store_.ObjectOf(s1_, store_.dictionary().Intern(Term::Iri("px"))),
            kNoTerm);
  EXPECT_EQ(store_.ObjectsOf(s2_, p1_).size(), 2u);
  EXPECT_EQ(store_.SubjectsOf(p1_, o1_).size(), 2u);
  EXPECT_TRUE(store_.Contains(s1_, p1_, o1_));
  EXPECT_FALSE(store_.Contains(s1_, p1_, o2_));
}

TEST_F(TripleStoreTest, InsertAfterMatchRebuildsIndexes) {
  EXPECT_EQ(store_.MatchAll(kNoTerm, p1_, kNoTerm).size(), 3u);
  store_.InsertEncoded({s1_, p1_, o2_});
  EXPECT_EQ(store_.MatchAll(kNoTerm, p1_, kNoTerm).size(), 4u);
}

// --- Turtle parser ---------------------------------------------------------------

TEST(TurtleParserTest, ParsesListingOneStyle) {
  // Listing 1 of the paper (observation with prefixed names and a typed
  // literal with thousands separators).
  const char kDoc[] = R"(
@prefix ex: <http://example.org/> .
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix sdmx-attr: <http://purl.org/linked-data/sdmx/2009/attribute#> .
@prefix xmls: <http://www.w3.org/2001/XMLSchema#> .

ex:obs1 a qb:Observation ;
    qb:dataSet ex:dataset ;
    ex:time ex:Y2001 ;
    sdmx-attr:unitMeasure ex:unit ;
    ex:geo ex:DE ;
    ex:population "82,350,000"^^xmls:integer .
)";
  TripleStore store;
  ASSERT_TRUE(ParseTurtle(kDoc, &store).ok());
  EXPECT_EQ(store.size(), 6u);
  const auto obs = store.dictionary().Find(Term::Iri("http://example.org/obs1"));
  ASSERT_TRUE(obs.has_value());
  const auto type = store.dictionary().Find(
      Term::Iri(std::string(vocab::kRdfType)));
  ASSERT_TRUE(type.has_value());
  const auto cls = store.dictionary().Find(
      Term::Iri(std::string(vocab::kQbObservation)));
  ASSERT_TRUE(cls.has_value());
  EXPECT_TRUE(store.Contains(*obs, *type, *cls));
  // The measure literal keeps its datatype.
  const auto pop =
      store.dictionary().Find(Term::Iri("http://example.org/population"));
  ASSERT_TRUE(pop.has_value());
  const TermId value = store.ObjectOf(*obs, *pop);
  ASSERT_NE(value, kNoTerm);
  EXPECT_EQ(store.dictionary().Get(value).value(), "82,350,000");
  EXPECT_EQ(store.dictionary().Get(value).datatype(),
            "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(TurtleParserTest, ObjectLists) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "e:s e:p e:a, e:b, e:c .",
                          &store)
                  .ok());
  EXPECT_EQ(store.size(), 3u);
}

TEST(TurtleParserTest, NumericAndBooleanShorthand) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "e:s e:i 42 ; e:d 3.14 ; e:e 1e3 ; e:n -7 ;"
                          " e:t true ; e:f false .",
                          &store)
                  .ok());
  EXPECT_EQ(store.size(), 6u);
  const Dictionary& dict = store.dictionary();
  EXPECT_TRUE(dict.Find(Term::TypedLiteral(
                            "42", "http://www.w3.org/2001/XMLSchema#integer"))
                  .has_value());
  EXPECT_TRUE(dict.Find(Term::TypedLiteral(
                            "3.14", "http://www.w3.org/2001/XMLSchema#decimal"))
                  .has_value());
  EXPECT_TRUE(dict.Find(Term::TypedLiteral(
                            "1e3", "http://www.w3.org/2001/XMLSchema#double"))
                  .has_value());
  EXPECT_TRUE(dict.Find(Term::TypedLiteral(
                            "true", "http://www.w3.org/2001/XMLSchema#boolean"))
                  .has_value());
}

TEST(TurtleParserTest, LangTagsAndEscapes) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "e:s e:l \"Ath\\u00\" .",
                          &store)
                  .IsParseError());  // unsupported escape
  TripleStore store2;
  ASSERT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "e:s e:l \"Athens\"@en ; e:m \"a\\\"b\" .",
                          &store2)
                  .ok());
  EXPECT_TRUE(store2.dictionary()
                  .Find(Term::LangLiteral("Athens", "en"))
                  .has_value());
  EXPECT_TRUE(store2.dictionary().Find(Term::Literal("a\"b")).has_value());
}

TEST(TurtleParserTest, BlankNodes) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "_:b1 e:p e:o .\n"
                          "e:s e:q _:b1 .",
                          &store)
                  .ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.dictionary().Find(Term::Blank("b1")).has_value());
}

TEST(TurtleParserTest, SparqlStylePrefix) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle("PREFIX e: <http://e/>\n"
                          "e:s e:p e:o .",
                          &store)
                  .ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(TurtleParserTest, Comments) {
  TripleStore store;
  ASSERT_TRUE(ParseTurtle("# leading comment\n"
                          "@prefix e: <http://e/> . # trailing\n"
                          "e:s e:p e:o . # done\n",
                          &store)
                  .ok());
  EXPECT_EQ(store.size(), 1u);
}

TEST(TurtleParserTest, ErrorsCarryLineNumbers) {
  TripleStore store;
  const Status st = ParseTurtle("@prefix e: <http://e/> .\n"
                                "e:s e:p \"unterminated .\n",
                                &store);
  ASSERT_TRUE(st.IsParseError());
  EXPECT_NE(st.message().find("line"), std::string::npos);
}

TEST(TurtleParserTest, RejectsUndefinedPrefix) {
  TripleStore store;
  EXPECT_TRUE(ParseTurtle("nope:s nope:p nope:o .", &store).IsParseError());
}

TEST(TurtleParserTest, RejectsCollections) {
  TripleStore store;
  EXPECT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "e:s e:p (e:a e:b) .",
                          &store)
                  .IsParseError());
}

TEST(TurtleParserTest, RejectsMissingDot) {
  TripleStore store;
  EXPECT_TRUE(ParseTurtle("@prefix e: <http://e/> .\n"
                          "e:s e:p e:o",
                          &store)
                  .IsParseError());
}

TEST(TurtleParserTest, FileNotFound) {
  TripleStore store;
  EXPECT_TRUE(ParseTurtleFile("/nonexistent/file.ttl", &store).IsNotFound());
}

// --- Serialization round-trips -----------------------------------------------

TEST(TurtleWriterTest, NTriplesRoundTrip) {
  TripleStore store;
  store.Insert(Term::Iri("http://e/s"), Term::Iri("http://e/p"),
               Term::TypedLiteral("5", std::string(vocab::kXsdInteger)));
  store.Insert(Term::Iri("http://e/s"), Term::Iri("http://e/q"),
               Term::LangLiteral("Athens", "en"));
  store.Insert(Term::Blank("b"), Term::Iri("http://e/p"),
               Term::Literal("plain \"quoted\""));
  const std::string nt = WriteNTriples(store);
  TripleStore reparsed;
  ASSERT_TRUE(ParseTurtle(nt, &reparsed).ok()) << nt;
  EXPECT_EQ(reparsed.size(), store.size());
  // Every original triple must exist in the reparsed store.
  for (const Triple& t : store.triples()) {
    const Dictionary& d = store.dictionary();
    auto s = reparsed.dictionary().Find(d.Get(t.s));
    auto p = reparsed.dictionary().Find(d.Get(t.p));
    auto o = reparsed.dictionary().Find(d.Get(t.o));
    ASSERT_TRUE(s.has_value() && p.has_value() && o.has_value());
    EXPECT_TRUE(reparsed.Contains(*s, *p, *o));
  }
}

TEST(TurtleWriterTest, TurtleRoundTripWithPrefixes) {
  TripleStore store;
  store.Insert(Term::Iri("http://e/s"), Term::Iri("http://e/p"),
               Term::Iri("http://e/o"));
  store.Insert(Term::Iri("http://e/s"), Term::Iri("http://e/p2"),
               Term::Literal("v"));
  const std::string ttl = WriteTurtle(store, {{"e", "http://e/"}});
  EXPECT_NE(ttl.find("@prefix e:"), std::string::npos);
  EXPECT_NE(ttl.find("e:s"), std::string::npos);
  TripleStore reparsed;
  ASSERT_TRUE(ParseTurtle(ttl, &reparsed).ok()) << ttl;
  EXPECT_EQ(reparsed.size(), store.size());
}

}  // namespace
}  // namespace rdf
}  // namespace rdfcube
