// Tests for hierarchy-based similarity and dataset relatedness.

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/occurrence_matrix.h"
#include "core/relatedness.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

using testutil::MakeRunningExample;

class SimilarityTest : public ::testing::Test {
 protected:
  SimilarityTest() : corpus_(MakeRunningExample()) {}
  const qb::CubeSpace& space() const { return *corpus_.space; }
  const hierarchy::CodeList& geo() const {
    return space().code_list(*space().FindDimension(testutil::kRefArea));
  }
  hierarchy::CodeId Geo(const char* name) const { return *geo().Find(name); }
  qb::Corpus corpus_;
};

TEST_F(SimilarityTest, CodeSimilarityBasics) {
  // Identical codes: 1.
  EXPECT_DOUBLE_EQ(CodeSimilarity(geo(), Geo("Athens"), Geo("Athens")), 1.0);
  // Siblings under Greece (level 3, LCA level 2): 2/3.
  EXPECT_NEAR(CodeSimilarity(geo(), Geo("Athens"), Geo("Ioannina")),
              2.0 / 3.0, 1e-9);
  // Athens (3) vs Rome (3), LCA Europe (1): 1/3.
  EXPECT_NEAR(CodeSimilarity(geo(), Geo("Athens"), Geo("Rome")), 1.0 / 3.0,
              1e-9);
  // Athens vs Austin: meet only at World (0): 0.
  EXPECT_DOUBLE_EQ(CodeSimilarity(geo(), Geo("Athens"), Geo("Austin")), 0.0);
  // Ancestor-descendant: Greece (2) vs Athens (3): LCA Greece -> 2/3.
  EXPECT_NEAR(CodeSimilarity(geo(), Geo("Greece"), Geo("Athens")), 2.0 / 3.0,
              1e-9);
  // Symmetric.
  EXPECT_DOUBLE_EQ(CodeSimilarity(geo(), Geo("Athens"), Geo("Greece")),
                   CodeSimilarity(geo(), Geo("Greece"), Geo("Athens")));
  // Root vs root.
  EXPECT_DOUBLE_EQ(CodeSimilarity(geo(), geo().root(), geo().root()), 1.0);
}

TEST_F(SimilarityTest, ObservationSimilarity) {
  const qb::ObservationSet& obs = *corpus_.observations;
  // Identical coordinates: 1.
  EXPECT_DOUBLE_EQ(ObservationSimilarity(obs, testutil::kO11, testutil::kO31),
                   1.0);
  // o21 (Greece, 2011, root) vs o32 (Athens, Jan2011, root):
  // geo LCA Greece: 2/3; period LCA 2011: 1/2; sex equal: 1 -> mean.
  EXPECT_NEAR(ObservationSimilarity(obs, testutil::kO21, testutil::kO32),
              (2.0 / 3.0 + 0.5 + 1.0) / 3.0, 1e-9);
  // Similarity is symmetric.
  EXPECT_DOUBLE_EQ(
      ObservationSimilarity(obs, testutil::kO21, testutil::kO32),
      ObservationSimilarity(obs, testutil::kO32, testutil::kO21));
  // Bounded.
  for (qb::ObsId a = 0; a < obs.size(); ++a) {
    for (qb::ObsId b = 0; b < obs.size(); ++b) {
      const double s = ObservationSimilarity(obs, a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(RelatednessTest, RunningExampleDatasetPairs) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  const OccurrenceMatrix om(obs);
  RelatednessSink sink(&obs);
  ASSERT_TRUE(RunBaseline(obs, om, BaselineOptions{}, &sink).ok());
  const auto matrix = sink.Compute();
  ASSERT_EQ(matrix.size(), 3u);  // (D1,D2), (D1,D3), (D2,D3)

  auto find = [&](qb::DatasetId a, qb::DatasetId b) {
    for (const auto& r : matrix) {
      if (r.a == a && r.b == b) return r;
    }
    ADD_FAILURE();
    return matrix[0];
  };
  // D2 (unemployment+poverty) vs D3 (unemployment): full containments
  // o21>o32, o21>o34, o22>o33 all cross D2->D3.
  const auto d2d3 = find(1, 2);
  EXPECT_EQ(d2d3.full_containments, 3u);
  EXPECT_GT(d2d3.measure_overlap, 0.0);  // shared unemployment
  // D1 vs D3: complementary pairs (o11,o31), (o13,o35); no shared measure.
  const auto d1d3 = find(0, 2);
  EXPECT_EQ(d1d3.complementarities, 2u);
  EXPECT_EQ(d1d3.full_containments, 0u);
  EXPECT_DOUBLE_EQ(d1d3.measure_overlap, 0.0);
  // D1 vs D2: no shared measures, no equal coordinates -> only schema
  // overlap contributes.
  const auto d1d2 = find(0, 1);
  EXPECT_EQ(d1d2.full_containments, 0u);
  EXPECT_EQ(d1d2.complementarities, 0u);
  EXPECT_GT(d1d2.dimension_overlap, 0.0);  // refArea+refPeriod shared
  // D2-D3 should score higher than D1-D2 (instance-level evidence).
  EXPECT_GT(d2d3.score, d1d2.score);
  // Scores bounded.
  for (const auto& r : matrix) {
    EXPECT_GE(r.score, 0.0);
    EXPECT_LE(r.score, 1.0);
  }
}

TEST(RelatednessTest, IntraDatasetPairsAreIgnored) {
  qb::Corpus corpus = MakeRunningExample();
  const qb::ObservationSet& obs = *corpus.observations;
  RelatednessSink sink(&obs);
  // o13 fully contains o12, both in D1: must not be tallied.
  sink.OnFullContainment(testutil::kO13, testutil::kO12);
  const auto matrix = sink.Compute();
  for (const auto& r : matrix) {
    EXPECT_EQ(r.full_containments, 0u);
  }
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
