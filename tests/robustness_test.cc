// Robustness / failure-injection tests: the parsers must return ParseError
// (never crash, hang, or accept) on arbitrary garbage and on systematically
// truncated or mutated valid documents.

#include <gtest/gtest.h>

#include <string>

#include "qb/binary_io.h"
#include "qb/loader.h"
#include "qb/validate.h"
#include "rdf/turtle_parser.h"
#include "sparql/parser.h"
#include "tests/test_corpus.h"
#include "util/random.h"

namespace rdfcube {
namespace {

constexpr char kValidDoc[] =
    "@prefix qb: <http://purl.org/linked-data/cube#> .\n"
    "@prefix skos: <http://www.w3.org/2004/02/skos/core#> .\n"
    "@prefix e: <http://e/> .\n"
    "e:World skos:inScheme e:scheme .\n"
    "e:o1 a qb:Observation ; qb:dataSet e:ds ; e:geo e:World ; "
    "e:pop \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";

constexpr char kValidQuery[] =
    "PREFIX e: <http://e/>\n"
    "SELECT DISTINCT ?a ?b WHERE {\n"
    "  ?a e:p ?b .\n"
    "  FILTER(?a != ?b)\n"
    "  FILTER NOT EXISTS { ?a e:q ?b . }\n"
    "}";

// --- Random-bytes fuzzing ------------------------------------------------------

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, TurtleParserSurvivesRandomBytes) {
  Rng rng(GetParam());
  for (int doc = 0; doc < 50; ++doc) {
    std::string text;
    const std::size_t len = rng.Uniform(200);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.Uniform(256)));
    }
    rdf::TripleStore store;
    // Must terminate and not crash; any Status is acceptable.
    (void)rdf::ParseTurtle(text, &store);
  }
}

TEST_P(FuzzTest, TurtleParserSurvivesStructuredNoise) {
  // Printable subset with Turtle-significant characters over-represented.
  static const char kAlphabet[] =
      "<>@.;,\"'()[]^^ \n\t:#ex123abcPREFIXfalse";
  Rng rng(GetParam() * 31 + 5);
  for (int doc = 0; doc < 100; ++doc) {
    std::string text;
    const std::size_t len = rng.Uniform(300);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)]);
    }
    rdf::TripleStore store;
    (void)rdf::ParseTurtle(text, &store);
  }
}

TEST_P(FuzzTest, SparqlParserSurvivesRandomBytes) {
  Rng rng(GetParam() * 7 + 3);
  for (int doc = 0; doc < 50; ++doc) {
    std::string text;
    const std::size_t len = rng.Uniform(200);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)sparql::ParseQuery(text);
  }
}

TEST_P(FuzzTest, MutatedValidTurtleNeverCrashes) {
  Rng rng(GetParam() * 13 + 7);
  const std::string base = kValidDoc;
  for (int doc = 0; doc < 100; ++doc) {
    std::string text = base;
    // 1-4 random single-byte mutations.
    const std::size_t mutations = 1 + rng.Uniform(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      text[rng.Uniform(text.size())] = static_cast<char>(rng.Uniform(128));
    }
    rdf::TripleStore store;
    const Status st = rdf::ParseTurtle(text, &store);
    if (st.ok()) {
      // If it still parses, loading must also terminate cleanly.
      (void)qb::LoadCorpusFromRdf(store);
    }
  }
}

TEST_P(FuzzTest, MutatedValidQueryNeverCrashes) {
  Rng rng(GetParam() * 17 + 11);
  const std::string base = kValidQuery;
  for (int doc = 0; doc < 100; ++doc) {
    std::string text = base;
    const std::size_t mutations = 1 + rng.Uniform(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      text[rng.Uniform(text.size())] = static_cast<char>(rng.Uniform(128));
    }
    (void)sparql::ParseQuery(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 11));

// --- Truncation sweeps -------------------------------------------------------------

TEST(TruncationTest, TurtleEveryPrefixTerminates) {
  const std::string base = kValidDoc;
  for (std::size_t cut = 0; cut <= base.size(); ++cut) {
    rdf::TripleStore store;
    (void)rdf::ParseTurtle(base.substr(0, cut), &store);
  }
}

TEST(TruncationTest, SparqlEveryPrefixTerminates) {
  const std::string base = kValidQuery;
  for (std::size_t cut = 0; cut <= base.size(); ++cut) {
    (void)sparql::ParseQuery(base.substr(0, cut));
  }
}

// --- Binary corpus byte-mutation sweep ---------------------------------------
// Exhaustive single-byte corruption of a serialized corpus: for every offset
// the deserializer must either reject with ParseError or produce a corpus
// that re-serializes and revalidates — never crash, never build an
// inconsistent corpus.

class BinaryMutationSweep : public ::testing::Test {
 protected:
  static void CheckMutation(const std::string& mutated) {
    auto result = qb::DeserializeCorpus(mutated);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError())
          << result.status().ToString();
      return;
    }
    // Survived: the corpus must be internally consistent — it validates
    // (data-quality checks never hard-fail) and round-trips again.
    (void)qb::ValidateCorpus(*result);
    auto rebytes = qb::SerializeCorpus(*result);
    EXPECT_TRUE(rebytes.ok()) << rebytes.status().ToString();
    if (rebytes.ok()) {
      EXPECT_TRUE(qb::DeserializeCorpus(*rebytes).ok());
    }
  }
};

TEST_F(BinaryMutationSweep, EveryOffsetBitFlip) {
  qb::Corpus corpus = testutil::MakeRunningExample();
  auto bytes = qb::SerializeCorpus(corpus);
  ASSERT_TRUE(bytes.ok());
  for (std::size_t offset = 0; offset < bytes->size(); ++offset) {
    // Two complementary corruptions per offset: invert the whole byte and
    // flip just the low bit (the low bit survives more structural checks).
    for (const char mask : {'\xff', '\x01'}) {
      std::string mutated = *bytes;
      mutated[offset] = static_cast<char>(mutated[offset] ^ mask);
      SCOPED_TRACE("offset " + std::to_string(offset));
      CheckMutation(mutated);
    }
  }
}

TEST_F(BinaryMutationSweep, EveryTruncationRejected) {
  qb::Corpus corpus = testutil::MakeRunningExample();
  auto bytes = qb::SerializeCorpus(corpus);
  ASSERT_TRUE(bytes.ok());
  for (std::size_t cut = 0; cut < bytes->size(); ++cut) {
    auto result = qb::DeserializeCorpus(bytes->substr(0, cut));
    ASSERT_FALSE(result.ok()) << "prefix " << cut << " accepted";
    EXPECT_TRUE(result.status().IsParseError()) << result.status().ToString();
  }
}

}  // namespace
}  // namespace rdfcube
