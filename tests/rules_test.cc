// Tests for the forward-chaining rule engine and the paper's rule set run
// against the RDF export of the running example.

#include <gtest/gtest.h>

#include <set>

#include "qb/exporter.h"
#include "rdf/turtle_parser.h"
#include "rdf/vocab.h"
#include "rules/engine.h"
#include "rules/paper_rules.h"
#include "sparql/paper_queries.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace rules {
namespace {

namespace vocab = rdf::vocab;

rdf::TripleStore ParseStore(const char* ttl) {
  rdf::TripleStore store;
  const Status st = rdf::ParseTurtle(ttl, &store);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return store;
}

// Counts (s, p, o) matches of a fully-unbound predicate by IRI.
std::size_t CountPredicate(const rdf::TripleStore& store,
                           std::string_view predicate) {
  auto p = store.dictionary().Find(rdf::Term::Iri(std::string(predicate)));
  if (!p.has_value()) return 0;
  return store.MatchAll(rdf::kNoTerm, *p, rdf::kNoTerm).size();
}

// --- Engine basics -----------------------------------------------------------

TEST(RuleEngineTest, TransitiveClosure) {
  auto store = ParseStore(R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:Athens skos:broader e:Greece .
e:Greece skos:broader e:Europe .
e:Europe skos:broader e:World .
)");
  std::vector<Rule> rules;
  {
    Rule base;
    base.name = "base";
    base.body.patterns.push_back(
        {RTerm::Var("x"), RTerm::Iri(std::string(vocab::kSkosBroader)),
         RTerm::Var("y")});
    base.head = {RTerm::Var("x"),
                 RTerm::Iri(std::string(vocab::kSkosBroaderTransitive)),
                 RTerm::Var("y")};
    rules.push_back(std::move(base));
  }
  {
    Rule trans;
    trans.name = "trans";
    trans.body.patterns.push_back(
        {RTerm::Var("x"),
         RTerm::Iri(std::string(vocab::kSkosBroaderTransitive)),
         RTerm::Var("y")});
    trans.body.patterns.push_back(
        {RTerm::Var("y"),
         RTerm::Iri(std::string(vocab::kSkosBroaderTransitive)),
         RTerm::Var("z")});
    trans.head = {RTerm::Var("x"),
                  RTerm::Iri(std::string(vocab::kSkosBroaderTransitive)),
                  RTerm::Var("z")};
    rules.push_back(std::move(trans));
  }
  auto stats = RunForwardChaining(rules, &store);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Closure: 3 base + Athens->Europe, Athens->World, Greece->World = 6.
  EXPECT_EQ(CountPredicate(store, vocab::kSkosBroaderTransitive), 6u);
  EXPECT_GE(stats->rounds, 2u);
  EXPECT_EQ(stats->derived, 6u);
}

TEST(RuleEngineTest, NotEqualBuiltinFilters) {
  auto store = ParseStore(R"(
@prefix e: <http://e/> .
e:a e:knows e:b .
e:a e:knows e:a .
)");
  Rule r;
  r.name = "distinct-knows";
  r.body.patterns.push_back(
      {RTerm::Var("x"), RTerm::Iri("http://e/knows"), RTerm::Var("y")});
  r.body.not_equals.push_back({"x", "y"});
  r.head = {RTerm::Var("x"), RTerm::Iri("http://e/knowsOther"),
            RTerm::Var("y")};
  auto stats = RunForwardChaining({r}, &store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(CountPredicate(store, "http://e/knowsOther"), 1u);
}

TEST(RuleEngineTest, NegationAsFailure) {
  auto store = ParseStore(R"(
@prefix e: <http://e/> .
e:a a e:Node .
e:b a e:Node .
e:a e:blocked e:yes .
)");
  Rule r;
  r.name = "unblocked";
  r.body.patterns.push_back({RTerm::Var("x"),
                             RTerm::Iri(std::string(vocab::kRdfType)),
                             RTerm::Iri("http://e/Node")});
  RuleGroup neg;
  neg.patterns.push_back(
      {RTerm::Var("x"), RTerm::Iri("http://e/blocked"), RTerm::Var("any")});
  r.body.negations.push_back(std::move(neg));
  r.head = {RTerm::Var("x"), RTerm::Iri("http://e/status"),
            RTerm::Iri("http://e/free")};
  auto stats = RunForwardChaining({r}, &store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(CountPredicate(store, "http://e/status"), 1u);
  auto free_subjects = store.SubjectsOf(
      *store.dictionary().Find(rdf::Term::Iri("http://e/status")),
      *store.dictionary().Find(rdf::Term::Iri("http://e/free")));
  ASSERT_EQ(free_subjects.size(), 1u);
  EXPECT_EQ(store.dictionary().Get(free_subjects[0]).value(), "http://e/b");
}

TEST(RuleEngineTest, MaxDerivedTriggersResourceExhausted) {
  auto store = ParseStore(R"(
@prefix e: <http://e/> .
e:n0 e:next e:n1 . e:n1 e:next e:n2 . e:n2 e:next e:n3 .
e:n3 e:next e:n4 . e:n4 e:next e:n5 .
)");
  // Transitive closure of `next` derives ~10 new facts; cap at 3.
  Rule r;
  r.name = "trans";
  r.body.patterns.push_back(
      {RTerm::Var("x"), RTerm::Iri("http://e/next"), RTerm::Var("y")});
  r.body.patterns.push_back(
      {RTerm::Var("y"), RTerm::Iri("http://e/next"), RTerm::Var("z")});
  r.head = {RTerm::Var("x"), RTerm::Iri("http://e/next"), RTerm::Var("z")};
  ChainOptions options;
  options.max_derived = 3;
  EXPECT_TRUE(
      RunForwardChaining({r}, &store, options).status().IsResourceExhausted());
}

TEST(RuleEngineTest, DeadlineTriggersTimeout) {
  rdf::TripleStore store;
  for (int i = 0; i < 3000; ++i) {
    store.Insert(rdf::Term::Iri("s" + std::to_string(i)),
                 rdf::Term::Iri("http://e/p"), rdf::Term::Iri("http://e/o"));
  }
  Rule r;
  r.name = "copy";
  r.body.patterns.push_back(
      {RTerm::Var("x"), RTerm::Iri("http://e/p"), RTerm::Var("y")});
  r.head = {RTerm::Var("x"), RTerm::Iri("http://e/q"), RTerm::Var("y")};
  ChainOptions options;
  options.deadline = Deadline(0.0);
  EXPECT_TRUE(RunForwardChaining({r}, &store, options).status().IsTimedOut());
}

TEST(RuleEngineTest, EmptyRuleSetIsFixpointImmediately) {
  auto store = ParseStore("@prefix e: <http://e/> . e:a e:p e:b .");
  auto stats = RunForwardChaining({}, &store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->derived, 0u);
  EXPECT_EQ(stats->rounds, 1u);
}

// --- Paper rules on the running example ------------------------------------------

class PaperRulesTest : public ::testing::Test {
 protected:
  PaperRulesTest() {
    qb::Corpus corpus = testutil::MakeRunningExample();
    EXPECT_TRUE(qb::ExportCorpusToRdf(corpus, &store_).ok());
  }

  static std::pair<std::string, std::string> Obs(const char* a,
                                                 const char* b) {
    return {std::string("urn:rdfcube:obs:") + a,
            std::string("urn:rdfcube:obs:") + b};
  }

  rdf::TripleStore store_;
};

TEST_F(PaperRulesTest, DerivesTheRelationships) {
  auto result = RunRuleBasedMethod(&store_, Deadline(60.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->timed_out);
  ASSERT_FALSE(result->out_of_memory);

  std::set<std::pair<std::string, std::string>> full(result->full.begin(),
                                                     result->full.end());
  // Same relaxed semantics as the SPARQL variant (strict ∃ + universal ∀).
  EXPECT_TRUE(full.count(Obs("o21", "o32")));
  EXPECT_TRUE(full.count(Obs("o21", "o34")));
  EXPECT_TRUE(full.count(Obs("o22", "o33")));
  EXPECT_TRUE(full.count(Obs("o13", "o12")));
  EXPECT_FALSE(full.count(Obs("o32", "o21")));

  std::set<std::pair<std::string, std::string>> partial(
      result->partial.begin(), result->partial.end());
  EXPECT_TRUE(partial.count(Obs("o21", "o31")));
  EXPECT_TRUE(partial.count(Obs("o21", "o32")));

  std::set<std::pair<std::string, std::string>> compl_pairs(
      result->complementary.begin(), result->complementary.end());
  EXPECT_TRUE(compl_pairs.count(Obs("o11", "o31")));
  EXPECT_TRUE(compl_pairs.count(Obs("o31", "o11")));
  EXPECT_TRUE(compl_pairs.count(Obs("o13", "o35")));
}

TEST_F(PaperRulesTest, AgreesWithSparqlOnFullContainment) {
  // Cross-validation of the two comparison engines: both implement the same
  // relaxed semantics, so their full-containment answers must coincide.
  rdf::TripleStore rules_store = store_;
  auto rules_result = RunRuleBasedMethod(&rules_store, Deadline(60.0));
  ASSERT_TRUE(rules_result.ok());
  auto sparql_result = sparql::RunRelationshipQuery(
      store_, sparql::FullContainmentQuery(), Deadline(60.0));
  ASSERT_TRUE(sparql_result.ok());
  const std::set<std::pair<std::string, std::string>> from_rules(
      rules_result->full.begin(), rules_result->full.end());
  const std::set<std::pair<std::string, std::string>> from_sparql(
      sparql_result->pairs.begin(), sparql_result->pairs.end());
  EXPECT_EQ(from_rules, from_sparql);
}

TEST_F(PaperRulesTest, TimeoutReported) {
  auto result = RunRuleBasedMethod(&store_, Deadline(1e-9));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
}

}  // namespace
}  // namespace rules
}  // namespace rdfcube
