// Chaos soak for the relationship server (DESIGN.md §6, the robustness
// headline): concurrent clients hammer a live server while a chaos schedule
// injects network read/write faults, reload crashes (snapshot.build), and
// publication crashes (server.reload.swap); a reload thread swaps the
// snapshot between a base and an extended corpus; a storm thread floods
// 1ms deadlines. Every OK answer is verified against a per-version
// CubeExplorer oracle — the server may serve STALE data (last-good snapshot
// after a failed reload) but never TORN data (an answer inconsistent with
// the corpus its version stamps). Overload must shed (bounded queue), and
// Stop() must drain cleanly with every thread joining.
//
// RDFCUBE_BENCH_SMOKE=1 shrinks the soak duration (CI smoke lane).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/stopwatch.h"
#include "base/thread_annotations.h"
#include "core/explorer.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "qb/corpus.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/snapshot_store.h"
#include "tests/test_corpus.h"
#include "util/fault.h"
#include "util/random.h"

namespace rdfcube {
namespace server {
namespace {

using core::CubeExplorer;
using core::RelationshipSnapshot;
using qb::ObsId;
using testutil::MakeRandomCorpus;

constexpr uint64_t kCorpusSeed = 97;

bool SmokeMode() {
  const char* env = std::getenv("RDFCUBE_BENCH_SMOKE");
  return env != nullptr && env[0] == '1';
}

// Which corpus a published snapshot version was built from.
enum CorpusKind { kBase = 0, kExtended = 1 };

// Sum of the ten per-op rdfcube_server_<op>_requests_total counters from the
// process-global registry. The conservation verdict compares before/after
// deltas, so ops whose counters have not been registered yet contribute zero.
uint64_t PerOpRequestsTotal() {
  static const char* const kOps[] = {
      "ping",  "containers", "contained", "complements", "partial",
      "scan",  "stats",      "metrics",   "slowlog",     "tracedump"};
  uint64_t sum = 0;
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (const auto& counter : snapshot.counters) {
    for (const char* op : kOps) {
      if (counter.name ==
          std::string("rdfcube_server_") + op + "_requests_total") {
        sum += counter.value;
        break;
      }
    }
  }
  return sum;
}

struct SoakCounters {
  std::atomic<uint64_t> verified_base{0};
  std::atomic<uint64_t> verified_extended{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> internal_responses{0};
  std::atomic<uint64_t> bad_request_responses{0};
  std::atomic<uint64_t> version_regressions{0};
  std::atomic<uint64_t> deadline_exceeded_seen{0};
  std::atomic<uint64_t> transport_errors{0};
  std::atomic<uint64_t> unknown_version{0};
};

class SoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_n_ = SmokeMode() ? 40u : 80u;
    extended_n_ = SmokeMode() ? 60u : 120u;
    duration_seconds_ = SmokeMode() ? 1.0 : 3.0;
    // CubeExplorer keeps a pointer: the oracle corpora must stay alive.
    oracle_corpora_[kBase] = MakeOracleCorpus(kBase);
    oracle_corpora_[kExtended] = MakeOracleCorpus(kExtended);
    base_oracle_ = std::make_unique<CubeExplorer>(
        oracle_corpora_[kBase].observations.get());
    extended_oracle_ = std::make_unique<CubeExplorer>(
        oracle_corpora_[kExtended].observations.get());
    {
      MutexLock lock(&kinds_mu_);
      kind_of_version_[1] = kBase;
    }
  }

  qb::Corpus MakeOracleCorpus(CorpusKind kind) const {
    return MakeRandomCorpus(kCorpusSeed,
                            kind == kBase ? base_n_ : extended_n_);
  }

  const CubeExplorer& Oracle(CorpusKind kind) const {
    return kind == kBase ? *base_oracle_ : *extended_oracle_;
  }

  std::size_t CorpusSize(CorpusKind kind) const {
    return kind == kBase ? base_n_ : extended_n_;
  }

  // nullopt when the version was never recorded (cannot happen for
  // published versions; counted defensively).
  std::optional<CorpusKind> KindOf(uint64_t version) {
    MutexLock lock(&kinds_mu_);
    auto it = kind_of_version_.find(version);
    if (it == kind_of_version_.end()) return std::nullopt;
    return it->second;
  }

  void RecordUpcomingVersion(uint64_t version, CorpusKind kind) {
    MutexLock lock(&kinds_mu_);
    kind_of_version_[version] = kind;
  }

  // Verifies one OK point-lookup response against the oracle for the
  // snapshot version that answered. Returns false on mismatch.
  bool VerifyLookup(Op op, ObsId target, const Response& resp,
                    SoakCounters* counters) {
    auto kind = KindOf(resp.snapshot_version);
    if (!kind.has_value()) {
      counters->unknown_version.fetch_add(1, std::memory_order_relaxed);
      return true;  // reload raced the bookkeeping; do not fail the soak
    }
    const CubeExplorer& oracle = Oracle(*kind);
    if (target >= CorpusSize(*kind)) return false;  // OK answer for bad id
    std::vector<ObsId> want;
    switch (op) {
      case Op::kContainers:
        want = oracle.Containers(target);
        break;
      case Op::kContained:
        want = oracle.ContainedBy(target);
        break;
      case Op::kComplements:
        want = oracle.Complements(target);
        break;
      case Op::kPartial: {
        auto matches = oracle.PartiallyContained(target, 0.0);
        std::sort(matches.begin(), matches.end(),
                  [](const auto& x, const auto& y) {
                    return x.other < y.other;
                  });
        if (resp.ids.size() != matches.size() ||
            resp.degrees.size() != matches.size()) {
          return false;
        }
        for (std::size_t i = 0; i < matches.size(); ++i) {
          if (resp.ids[i] != matches[i].other) return false;
          if (std::abs(resp.degrees[i] - matches[i].degree) > 1e-9) {
            return false;
          }
        }
        (*kind == kBase ? counters->verified_base
                        : counters->verified_extended)
            .fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      default:
        return true;
    }
    std::sort(want.begin(), want.end());
    if (resp.ids != want) return false;
    (*kind == kBase ? counters->verified_base : counters->verified_extended)
        .fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  std::size_t base_n_ = 0;
  std::size_t extended_n_ = 0;
  double duration_seconds_ = 3.0;
  std::map<int, qb::Corpus> oracle_corpora_;
  std::unique_ptr<CubeExplorer> base_oracle_;
  std::unique_ptr<CubeExplorer> extended_oracle_;
  Mutex kinds_mu_;
  std::map<uint64_t, CorpusKind> kind_of_version_
      RDFCUBE_GUARDED_BY(kinds_mu_);
};

TEST_F(SoakTest, ChaosSoakNeverServesTornData) {
  // Small queue so the client fleet overloads it; the soak must shed.
  ServerOptions options;
  options.num_workers = 2;
  options.max_queue = 2;
  options.retry_after_ms = 1;
  options.default_deadline_seconds = 2.0;
  Server srv(options);
  {
    RelationshipSnapshot::BuildOptions build;
    build.version = 1;
    auto snap = RelationshipSnapshot::Build(MakeOracleCorpus(kBase), build);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    ASSERT_TRUE(srv.Start(std::move(snap).value()).ok());
  }

  // The chaos schedule, armed for the whole soak: flaky network reads and
  // writes (both sides of every connection), reload builds that crash, and
  // reloads that die between build and publication.
  FaultInjector injector(SmokeMode() ? 2 : 1);
  injector.ArmProbability(kFaultNetRead, 0.01);
  injector.ArmProbability(kFaultNetWrite, 0.01);
  injector.ArmProbability(core::kFaultSnapshotBuild, 0.002);
  injector.ArmProbability(kFaultReloadSwap, 0.10);
  ScopedFaultInjection scope(&injector);

  SoakCounters counters;
  std::atomic<bool> stop{false};
  // Baseline for the metrics-conservation verdict: the per-op counters are
  // process-global, so only their delta over this soak is attributable to
  // this server instance.
  const uint64_t per_op_before = PerOpRequestsTotal();
  const Deadline soak_deadline(duration_seconds_);

  // --- Client fleet: mixed operations, every OK answer oracle-checked ----
  std::vector<std::thread> clients;
  const int kNumClients = 6;
  for (int t = 0; t < kNumClients; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = srv.port();
      copts.max_retries = 3;
      copts.initial_backoff_ms = 1;
      copts.max_backoff_ms = 8;
      copts.jitter_seed = static_cast<uint64_t>(t + 1);
      Client client(copts);
      Rng rng(static_cast<uint64_t>(t) * 7919 + 13);
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Request req;
        const std::size_t roll = rng.Uniform(100);
        if (roll < 10) {
          req.op = Op::kPing;
        } else if (roll < 30) {
          req.op = Op::kContainers;
        } else if (roll < 50) {
          req.op = Op::kContained;
        } else if (roll < 70) {
          req.op = Op::kComplements;
        } else if (roll < 85) {
          req.op = Op::kPartial;
        } else if (roll < 95) {
          req.op = Op::kScan;
          req.limit = 500;
        } else {
          req.op = Op::kStats;
        }
        // Ids beyond the base corpus probe staleness; a few beyond the
        // extended corpus probe NotFound.
        req.target = static_cast<ObsId>(rng.Uniform(extended_n_ + 4));
        auto resp = client.Call(req);
        if (!resp.ok()) {
          counters.transport_errors.fetch_add(1, std::memory_order_relaxed);
          client.Disconnect();
          continue;
        }
        switch (resp->code) {
          case RespCode::kOk:
            break;
          case RespCode::kNotFound:
            continue;  // target beyond the answering snapshot: legitimate
          case RespCode::kDeadlineExceeded:
            counters.deadline_exceeded_seen.fetch_add(
                1, std::memory_order_relaxed);
            continue;
          case RespCode::kShed:
          case RespCode::kShuttingDown:
            continue;
          case RespCode::kInternal:
            counters.internal_responses.fetch_add(1,
                                                  std::memory_order_relaxed);
            continue;
          case RespCode::kBadRequest:
            counters.bad_request_responses.fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        // Snapshot versions move forward only: a client can observe stale
        // data but never an older snapshot than one it already saw.
        if (resp->snapshot_version != 0) {
          if (resp->snapshot_version < last_version) {
            counters.version_regressions.fetch_add(1,
                                                   std::memory_order_relaxed);
          }
          last_version = std::max(last_version, resp->snapshot_version);
        }
        if (req.op == Op::kContainers || req.op == Op::kContained ||
            req.op == Op::kComplements || req.op == Op::kPartial) {
          if (!VerifyLookup(req.op, req.target, *resp, &counters)) {
            counters.mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (req.op == Op::kScan) {
          auto kind = KindOf(resp->snapshot_version);
          if (kind.has_value()) {
            const auto n = static_cast<ObsId>(CorpusSize(*kind));
            for (const auto& rec : resp->records) {
              if ((rec.kind != 'F' && rec.kind != 'P' && rec.kind != 'C') ||
                  rec.a >= n || rec.b >= n || rec.degree < 0.0 ||
                  rec.degree > 1.0) {
                counters.mismatches.fetch_add(1, std::memory_order_relaxed);
                break;
              }
            }
          }
        }
      }
    });
  }

  // --- Deadline storm: 1ms budgets that expire while queued --------------
  std::thread storm([&] {
    ClientOptions copts;
    copts.port = srv.port();
    copts.max_retries = 0;
    copts.jitter_seed = 999;
    Client client(copts);
    Request req;
    req.op = Op::kScan;
    req.limit = 500;
    req.deadline_ms = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto resp = client.Call(req);
      if (!resp.ok()) client.Disconnect();
    }
  });

  // --- Reload thread: swap base <-> extended, crashing at random ---------
  std::thread reloader([&] {
    uint64_t good = 0, failed = 0;
    int flip = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const CorpusKind kind = (flip++ % 2 == 0) ? kBase : kExtended;
      const SnapshotPtr current = srv.store().Current();
      ASSERT_NE(current, nullptr);
      // Record the version this reload WILL publish before it can publish
      // it, so clients can always resolve a served version to its corpus.
      RecordUpcomingVersion(current->version() + 1, kind);
      const Status st = srv.Reload(MakeOracleCorpus(kind), Deadline(10.0));
      if (st.ok()) {
        ++good;
      } else {
        ++failed;  // degraded: last-good snapshot keeps serving
      }
    }
    // The chaos schedule guarantees both outcomes appear over the soak.
    EXPECT_GT(good, 0u) << "no reload ever succeeded";
    (void)failed;
  });

  while (!soak_deadline.Expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  storm.join();
  reloader.join();

  srv.Stop();  // orderly drain; must not hang or crash
  // Read the tallies only after Stop() joins the workers: a job increments
  // requests_total_ on entry but its per-op counter in the epilogue, so a
  // capture racing the last in-flight job would undercount the per-op side.
  const uint64_t shed = srv.shed_total();
  const uint64_t requests = srv.requests_total();
  const uint64_t per_op_delta = PerOpRequestsTotal() - per_op_before;

  // The verdicts. Torn data = any oracle mismatch or version regression.
  EXPECT_EQ(counters.mismatches.load(), 0u);
  EXPECT_EQ(counters.version_regressions.load(), 0u);
  EXPECT_EQ(counters.internal_responses.load(), 0u);
  EXPECT_EQ(counters.bad_request_responses.load(), 0u);
  // Metrics conservation: every worker-handled request ticks exactly one
  // per-op counter, and this soak sends none of the inline-answered obs ops
  // (kMetrics/kSlowlog bypass admission and skip requests_total), so the
  // per-op delta-sum must match the server's own tally exactly.
  EXPECT_EQ(per_op_delta, requests)
      << "per-op RED counters do not conserve requests_total";
  // The soak exercised what it claims to exercise.
  EXPECT_GT(requests, 100u);
  EXPECT_GT(shed, 0u) << "bounded queue never shed under overload";
  EXPECT_GT(counters.verified_base.load(), 0u)
      << "no answer from the base snapshot was ever verified";
  EXPECT_GT(counters.verified_extended.load(), 0u)
      << "no answer from a refreshed snapshot was ever verified";
  EXPECT_GT(srv.store().reloads(), 0u);
}

TEST_F(SoakTest, DrainUnderLoadLeavesNoStuckClients) {
  // Stop() while a client fleet is mid-flight: every blocked Call must
  // complete (with an error at worst) and every thread must join.
  ServerOptions options;
  options.num_workers = 2;
  options.max_queue = 8;
  Server srv(options);
  {
    RelationshipSnapshot::BuildOptions build;
    build.version = 1;
    auto snap = RelationshipSnapshot::Build(MakeOracleCorpus(kBase), build);
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(srv.Start(std::move(snap).value()).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = srv.port();
      copts.max_retries = 1;
      copts.initial_backoff_ms = 1;
      copts.connect_timeout_seconds = 0.2;
      copts.request_timeout_seconds = 0.5;
      copts.jitter_seed = static_cast<uint64_t>(t + 1);
      Client client(copts);
      Request req;
      req.op = Op::kScan;
      req.limit = 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)client.Call(req);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (completed.load() < 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  srv.Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop.store(true);
  for (auto& t : clients) t.join();  // no client wedges on a dead server
  SUCCEED();
}

}  // namespace
}  // namespace server
}  // namespace rdfcube
