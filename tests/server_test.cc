// Relationship-server suite (DESIGN.md §6): wire-protocol round trips and
// malformed-frame fuzzing, the bounded admission queue, the immutable
// RelationshipSnapshot (oracle equivalence against CubeExplorer, incremental
// refresh, crash-safe persistence, deadline/fault handling), the
// copy-on-write SnapshotStore, and end-to-end server/client behavior:
// point lookups, bulk scans, load shedding with retry-after, deadline
// expiry in the queue, protocol-error hangups, and orderly drain.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/explorer.h"
#include "core/relationship.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qb/corpus.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/slowlog.h"
#include "server/snapshot_store.h"
#include "server/socket_io.h"
#include "tests/test_corpus.h"
#include "util/fault.h"
#include "util/random.h"

namespace rdfcube {
namespace server {
namespace {

using core::RelationshipSnapshot;
using qb::ObsId;
using testutil::MakeRandomCorpus;
using testutil::MakeRunningExample;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

RelationshipSnapshot::Ptr MustBuild(qb::Corpus corpus, uint64_t version = 1) {
  RelationshipSnapshot::BuildOptions options;
  options.version = version;
  auto snap = RelationshipSnapshot::Build(std::move(corpus), options);
  EXPECT_TRUE(snap.ok()) << snap.status().ToString();
  return snap.value();
}

// Canonicalized relationship sets for cross-representation equality.
struct RelSets {
  std::set<std::pair<ObsId, ObsId>> full;
  std::set<std::pair<ObsId, ObsId>> compl_pairs;
  std::set<std::tuple<ObsId, ObsId, int>> partial;

  static RelSets From(const core::CollectingSink& sink) {
    RelSets s;
    for (const auto& p : sink.full()) s.full.insert(p);
    for (const auto& p : sink.complementary()) s.compl_pairs.insert(p);
    for (const auto& p : sink.partial()) {
      s.partial.insert({p.a, p.b, static_cast<int>(p.degree * 1000 + 0.5)});
    }
    return s;
  }
  bool operator==(const RelSets& o) const {
    return full == o.full && compl_pairs == o.compl_pairs &&
           partial == o.partial;
  }
};

RelSets ScanSets(const RelationshipSnapshot& snap) {
  core::CollectingSink sink;
  EXPECT_TRUE(snap.ScanAll(&sink, Deadline()).ok());
  return RelSets::From(sink);
}

// --- Protocol: round trips ---------------------------------------------------

TEST(ProtocolTest, RequestRoundTripsEveryOp) {
  for (Op op : {Op::kPing, Op::kContainers, Op::kContained, Op::kComplements,
                Op::kPartial, Op::kScan, Op::kStats, Op::kMetrics,
                Op::kSlowlog, Op::kTraceDump}) {
    Request req;
    req.op = op;
    req.target = 0xabcdef01u;
    req.deadline_ms = 1500;
    req.min_degree = 0.625;
    req.limit = 77;
    req.request_id = 0x0123456789abcdefull;
    auto back = DecodeRequest(EncodeRequest(req));
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(back->op, req.op);
    EXPECT_EQ(back->target, req.target);
    EXPECT_EQ(back->deadline_ms, req.deadline_ms);
    EXPECT_EQ(back->min_degree, req.min_degree);
    EXPECT_EQ(back->limit, req.limit);
    EXPECT_EQ(back->request_id, req.request_id);
  }
}

TEST(ProtocolTest, ResponseRoundTripsEveryField) {
  Response resp;
  resp.code = RespCode::kShed;
  resp.retry_after_ms = 250;
  resp.snapshot_version = 0x1122334455667788ull;
  resp.error = "try later \x01\xff";
  resp.ids = {3, 1, 0xffffffffu};
  resp.degrees = {0.0, 0.5, 1.0};
  resp.records = {{'F', 1, 2, 0.0}, {'P', 3, 4, 0.75}, {'C', 5, 6, 0.0}};
  resp.stats = std::vector<uint64_t>(kStatsNumFields, 42);
  resp.text = "# HELP x\nnot ascii: \x02\xfe";
  resp.request_id = 0xfeedface01020304ull;
  auto back = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->code, resp.code);
  EXPECT_EQ(back->retry_after_ms, resp.retry_after_ms);
  EXPECT_EQ(back->snapshot_version, resp.snapshot_version);
  EXPECT_EQ(back->error, resp.error);
  EXPECT_EQ(back->text, resp.text);
  EXPECT_EQ(back->request_id, resp.request_id);
  EXPECT_EQ(back->ids, resp.ids);
  EXPECT_EQ(back->degrees, resp.degrees);
  ASSERT_EQ(back->records.size(), resp.records.size());
  for (std::size_t i = 0; i < resp.records.size(); ++i) {
    EXPECT_EQ(back->records[i].kind, resp.records[i].kind);
    EXPECT_EQ(back->records[i].a, resp.records[i].a);
    EXPECT_EQ(back->records[i].b, resp.records[i].b);
    EXPECT_EQ(back->records[i].degree, resp.records[i].degree);
  }
  EXPECT_EQ(back->stats, resp.stats);
}

TEST(ProtocolTest, EmptyResponseRoundTrips) {
  auto back = DecodeResponse(EncodeResponse(Response{}));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code, RespCode::kOk);
  EXPECT_TRUE(back->ids.empty());
  EXPECT_TRUE(back->records.empty());
}

// --- Protocol: malformed frames ----------------------------------------------

TEST(ProtocolTest, EveryRequestTruncationIsParseError) {
  Request req;
  req.op = Op::kPartial;
  req.target = 9;
  req.min_degree = 0.5;
  const std::string bytes = EncodeRequest(req);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = DecodeRequest(bytes.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "prefix " << cut << " accepted";
    EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
  }
  EXPECT_TRUE(DecodeRequest(bytes + "x").status().IsParseError());
}

TEST(ProtocolTest, EveryResponseTruncationIsParseError) {
  Response resp;
  resp.ids = {1, 2};
  resp.degrees = {0.5};
  resp.records = {{'P', 1, 2, 0.5}};
  resp.stats = {1, 2, 3};
  resp.error = "e";
  const std::string bytes = EncodeResponse(resp);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto r = DecodeResponse(bytes.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "prefix " << cut << " accepted";
    EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
  }
  EXPECT_TRUE(DecodeResponse(bytes + "x").status().IsParseError());
}

TEST(ProtocolTest, RejectsBadVersionOpCodeAndDegrees) {
  Request req;
  std::string bytes = EncodeRequest(req);
  bytes[0] = static_cast<char>(kProtocolVersion + 1);
  EXPECT_TRUE(DecodeRequest(bytes).status().IsParseError());

  bytes = EncodeRequest(req);
  bytes[1] = 0;  // Op 0 is not assigned.
  EXPECT_TRUE(DecodeRequest(bytes).status().IsParseError());
  bytes[1] = 11;  // First value past kTraceDump.
  EXPECT_TRUE(DecodeRequest(bytes).status().IsParseError());
  bytes[1] = 99;
  EXPECT_TRUE(DecodeRequest(bytes).status().IsParseError());
  // The observability ops decode (they were added at the top of the range).
  for (uint8_t valid : {8, 9, 10}) {
    bytes[1] = static_cast<char>(valid);
    EXPECT_TRUE(DecodeRequest(bytes).ok()) << "op " << int{valid};
  }

  // min_degree outside [0, 1] and NaN are both rejected.
  req.op = Op::kPartial;
  req.min_degree = 1.5;
  EXPECT_TRUE(DecodeRequest(EncodeRequest(req)).status().IsParseError());
  req.min_degree = -0.1;
  EXPECT_TRUE(DecodeRequest(EncodeRequest(req)).status().IsParseError());
  req.min_degree = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(DecodeRequest(EncodeRequest(req)).status().IsParseError());

  Response resp;
  std::string rbytes = EncodeResponse(resp);
  rbytes[1] = 99;  // response code
  EXPECT_TRUE(DecodeResponse(rbytes).status().IsParseError());

  resp.records = {{'X', 1, 2, 0.0}};  // unknown record kind
  EXPECT_TRUE(DecodeResponse(EncodeResponse(resp)).status().IsParseError());
  resp.records = {{'P', 1, 2, std::numeric_limits<double>::quiet_NaN()}};
  EXPECT_TRUE(DecodeResponse(EncodeResponse(resp)).status().IsParseError());
}

TEST(ProtocolTest, RandomBytesNeverCrashDecoders) {
  Rng rng(0xf00d);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes(rng.Uniform(64), '\0');
    for (char& c : bytes) c = static_cast<char>(rng.Uniform(256));
    // Must return (ok or ParseError), never crash or allocate absurdly.
    auto req = DecodeRequest(bytes);
    if (!req.ok()) {
      EXPECT_TRUE(req.status().IsParseError());
    }
    auto resp = DecodeResponse(bytes);
    if (!resp.ok()) {
      EXPECT_TRUE(resp.status().IsParseError());
    }
  }
}

TEST(ProtocolTest, MutatedValidFramesNeverCrashDecoders) {
  Response resp;
  resp.ids = {1, 2, 3};
  resp.degrees = {0.25, 0.5};
  resp.records = {{'F', 1, 2, 0.0}, {'C', 2, 3, 0.0}};
  resp.stats = {7, 8, 9};
  resp.error = "detail";
  const std::string valid = EncodeResponse(resp);
  Rng rng(0xbeef);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes = valid;
    const std::size_t flips = 1 + rng.Uniform(4);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[rng.Uniform(bytes.size())] ^=
          static_cast<char>(1 + rng.Uniform(255));
    }
    auto r = DecodeResponse(bytes);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
    }
  }
}

// --- SlowlogRing -------------------------------------------------------------

SlowlogEntry Entry(double latency_us, uint64_t request_id = 0,
                   Op op = Op::kScan) {
  SlowlogEntry e;
  e.op = static_cast<uint8_t>(op);
  e.request_id = request_id;
  e.latency_us = latency_us;
  e.snapshot_version = 1;
  return e;
}

std::vector<double> Latencies(const SlowlogRing& ring) {
  std::vector<double> out;
  for (const SlowlogEntry& e : ring.Dump()) out.push_back(e.latency_us);
  return out;
}

TEST(SlowlogRingTest, KeepsTheSlowestAndDumpsByLatencyDescending) {
  SlowlogRing ring(2);
  ring.Add(Entry(10.0));
  ring.Add(Entry(20.0));
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(Latencies(ring), (std::vector<double>{20.0, 10.0}));
  // A faster request than the current minimum is dropped...
  ring.Add(Entry(5.0));
  EXPECT_EQ(Latencies(ring), (std::vector<double>{20.0, 10.0}));
  // ...and a strictly slower one evicts exactly the minimum.
  ring.Add(Entry(15.0));
  EXPECT_EQ(Latencies(ring), (std::vector<double>{20.0, 15.0}));
}

TEST(SlowlogRingTest, EqualLatencyNewcomerIsDroppedNotSwapped) {
  SlowlogRing ring(1);
  ring.Add(Entry(10.0, /*request_id=*/111));
  ring.Add(Entry(10.0, /*request_id=*/222));  // not strictly slower
  const std::vector<SlowlogEntry> dump = ring.Dump();
  ASSERT_EQ(dump.size(), 1u);
  EXPECT_EQ(dump[0].request_id, 111u);
}

TEST(SlowlogRingTest, EvictionPrefersTheOldestAmongEqualMinima) {
  SlowlogRing ring(2);
  ring.Add(Entry(10.0, 1));  // sequence 0
  ring.Add(Entry(10.0, 2));  // sequence 1
  ring.Add(Entry(12.0, 3));  // evicts the sequence-0 entry
  const std::vector<SlowlogEntry> dump = ring.Dump();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].request_id, 3u);
  EXPECT_EQ(dump[1].request_id, 2u);
}

TEST(SlowlogRingTest, EqualLatenciesDumpOldestFirst) {
  SlowlogRing ring(3);
  ring.Add(Entry(10.0, 1));
  ring.Add(Entry(10.0, 2));
  ring.Add(Entry(99.0, 3));
  const std::vector<SlowlogEntry> dump = ring.Dump();
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].request_id, 3u);  // slowest first
  EXPECT_EQ(dump[1].request_id, 1u);  // then ties by admission order
  EXPECT_EQ(dump[2].request_id, 2u);
}

TEST(SlowlogRingTest, ZeroCapacityDisablesRecording) {
  SlowlogRing ring(0);
  ring.Add(Entry(10.0));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.ToJson(), "[]");
}

TEST(SlowlogRingTest, ToJsonNamesOpsAndCarriesEveryField) {
  SlowlogRing ring(4);
  SlowlogEntry e = Entry(2.5, /*request_id=*/7, Op::kContainers);
  e.deadline_remaining_ms = 1.5;
  e.snapshot_version = 3;
  ring.Add(e);
  EXPECT_EQ(ring.ToJson(),
            "[{\"op\":\"containers\",\"request_id\":7,\"latency_us\":2.5,"
            "\"deadline_remaining_ms\":1.5,\"snapshot_version\":3,"
            "\"sequence\":0}]");
}

TEST(ProtocolTest, OpNamesAreStableWireIdentifiers) {
  EXPECT_STREQ(OpName(Op::kPing), "ping");
  EXPECT_STREQ(OpName(Op::kScan), "scan");
  EXPECT_STREQ(OpName(Op::kMetrics), "metrics");
  EXPECT_STREQ(OpName(Op::kSlowlog), "slowlog");
  EXPECT_STREQ(OpName(Op::kTraceDump), "tracedump");
  EXPECT_STREQ(OpName(static_cast<Op>(0)), "unknown");
}

// --- AdmissionQueue ----------------------------------------------------------

TEST(AdmissionQueueTest, FifoOrderAndShedAtCapacity) {
  AdmissionQueue q(2);
  std::vector<int> ran;
  EXPECT_EQ(q.TryPush([&] { ran.push_back(1); }), Admission::kAdmitted);
  EXPECT_EQ(q.TryPush([&] { ran.push_back(2); }), Admission::kAdmitted);
  EXPECT_EQ(q.TryPush([&] { ran.push_back(3); }), Admission::kShed);
  EXPECT_EQ(q.Depth(), 2u);
  for (int i = 0; i < 2; ++i) {
    auto job = q.Pop(Deadline());
    ASSERT_TRUE(job.has_value());
    (*job)();
  }
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.Depth(), 0u);
}

TEST(AdmissionQueueTest, PopHonorsDeadlineWhenEmpty) {
  AdmissionQueue q(4);
  EXPECT_FALSE(q.Pop(Deadline(0.0)).has_value());
  EXPECT_FALSE(q.Pop(Deadline(0.02)).has_value());
}

TEST(AdmissionQueueTest, CloseRefusesNewButDrainsAdmitted) {
  AdmissionQueue q(4);
  int ran = 0;
  EXPECT_EQ(q.TryPush([&] { ++ran; }), Admission::kAdmitted);
  EXPECT_EQ(q.TryPush([&] { ++ran; }), Admission::kAdmitted);
  q.Close();
  q.Close();  // idempotent
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.TryPush([&] { ++ran; }), Admission::kClosed);
  // Admitted jobs stay poppable after Close.
  while (auto job = q.Pop(Deadline())) (*job)();
  EXPECT_EQ(ran, 2);
  // Closed and empty: Pop returns immediately even with no deadline.
  EXPECT_FALSE(q.Pop(Deadline()).has_value());
}

TEST(AdmissionQueueTest, PopUnblocksOnPush) {
  AdmissionQueue q(4);
  std::atomic<int> got{0};
  std::thread popper([&] {
    auto job = q.Pop(Deadline(5.0));
    if (job.has_value()) {
      (*job)();
      got.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.TryPush([] {}), Admission::kAdmitted);
  popper.join();
  EXPECT_EQ(got.load(), 1);
}

TEST(AdmissionQueueTest, ZeroCapacityClampsToOne) {
  AdmissionQueue q(0);
  EXPECT_EQ(q.TryPush([] {}), Admission::kAdmitted);
  EXPECT_EQ(q.TryPush([] {}), Admission::kShed);
}

// --- RelationshipSnapshot: queries vs the explorer oracle --------------------

TEST(SnapshotTest, PointLookupsMatchCubeExplorerOracle) {
  qb::Corpus corpus = MakeRandomCorpus(17, 70);
  const core::CubeExplorer oracle(corpus.observations.get());
  const std::size_t n = corpus.observations->size();
  auto snap = MustBuild(std::move(corpus));

  for (ObsId id = 0; id < n; ++id) {
    auto containers = snap->Containers(id, Deadline());
    ASSERT_TRUE(containers.ok());
    std::vector<ObsId> want = oracle.Containers(id);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(containers.value(), want) << "Containers(" << id << ")";

    auto contained = snap->Contained(id, Deadline());
    ASSERT_TRUE(contained.ok());
    want = oracle.ContainedBy(id);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(contained.value(), want) << "Contained(" << id << ")";

    auto complements = snap->Complements(id, Deadline());
    ASSERT_TRUE(complements.ok());
    want = oracle.Complements(id);
    std::sort(want.begin(), want.end());
    EXPECT_EQ(complements.value(), want) << "Complements(" << id << ")";

    auto partial = snap->PartiallyContained(id, 0.0, Deadline());
    ASSERT_TRUE(partial.ok());
    auto want_partial = oracle.PartiallyContained(id, 0.0);
    std::sort(want_partial.begin(), want_partial.end(),
              [](const auto& x, const auto& y) { return x.other < y.other; });
    ASSERT_EQ(partial->size(), want_partial.size()) << "Partial(" << id << ")";
    for (std::size_t i = 0; i < want_partial.size(); ++i) {
      EXPECT_EQ((*partial)[i].other, want_partial[i].other);
      EXPECT_NEAR((*partial)[i].degree, want_partial[i].degree, 1e-12);
    }
  }
}

TEST(SnapshotTest, MinDegreeFiltersPartialMatches) {
  auto snap = MustBuild(MakeRandomCorpus(4, 60));
  for (ObsId id = 0; id < snap->num_observations(); ++id) {
    auto all = snap->PartiallyContained(id, 0.0, Deadline());
    auto strict = snap->PartiallyContained(id, 0.7, Deadline());
    ASSERT_TRUE(all.ok());
    ASSERT_TRUE(strict.ok());
    std::size_t expect = 0;
    for (const auto& m : all.value()) {
      if (m.degree >= 0.7) ++expect;
    }
    EXPECT_EQ(strict->size(), expect);
    for (const auto& m : strict.value()) EXPECT_GE(m.degree, 0.7);
  }
}

TEST(SnapshotTest, UnknownIdIsNotFoundExpiredDeadlineIsTimedOut) {
  auto snap = MustBuild(MakeRunningExample());
  const ObsId bad = static_cast<ObsId>(snap->num_observations());
  EXPECT_TRUE(snap->Containers(bad, Deadline()).status().IsNotFound());
  EXPECT_TRUE(snap->Contained(bad, Deadline()).status().IsNotFound());
  EXPECT_TRUE(snap->Complements(bad, Deadline()).status().IsNotFound());
  EXPECT_TRUE(
      snap->PartiallyContained(bad, 0.0, Deadline()).status().IsNotFound());

  EXPECT_TRUE(snap->Containers(0, Deadline(0.0)).status().IsTimedOut());
  core::CollectingSink sink;
  EXPECT_TRUE(snap->ScanAll(&sink, Deadline(0.0)).IsTimedOut());
}

TEST(SnapshotTest, ScanAllMatchesCounts) {
  auto snap = MustBuild(MakeRandomCorpus(23, 60));
  core::CollectingSink sink;
  ASSERT_TRUE(snap->ScanAll(&sink, Deadline()).ok());
  EXPECT_EQ(sink.full().size(), snap->num_full());
  EXPECT_EQ(sink.partial().size(), snap->num_partial());
  EXPECT_EQ(sink.complementary().size(), snap->num_complementary());
}

// --- RelationshipSnapshot: build failure modes -------------------------------

TEST(SnapshotTest, BuildHonorsDeadline) {
  RelationshipSnapshot::BuildOptions options;
  options.deadline = Deadline(0.0);
  auto snap = RelationshipSnapshot::Build(MakeRandomCorpus(1, 40), options);
  EXPECT_TRUE(snap.status().IsTimedOut()) << snap.status().ToString();
}

TEST(SnapshotTest, BuildFaultAborts) {
  FaultInjector injector(1);
  injector.ArmNthCall(core::kFaultSnapshotBuild, 5);
  ScopedFaultInjection scope(&injector);
  auto snap = RelationshipSnapshot::Build(MakeRandomCorpus(1, 40), {});
  EXPECT_TRUE(snap.status().IsInternal()) << snap.status().ToString();
}

TEST(SnapshotTest, BuildRejectsEmptyCorpusHandle) {
  qb::Corpus corpus;  // null space/observations
  auto snap = RelationshipSnapshot::Build(std::move(corpus), {});
  EXPECT_TRUE(snap.status().IsInvalidArgument());
}

// --- RelationshipSnapshot: incremental refresh -------------------------------

TEST(SnapshotTest, IncrementalRefreshEqualsFullRebuild) {
  // MakeRandomCorpus(seed, n) and (seed, n + k) share the first n
  // observations: the smaller corpus is a prefix of the larger.
  auto base = MustBuild(MakeRandomCorpus(7, 40), 1);
  RelationshipSnapshot::BuildOptions options;
  options.version = 2;
  auto refreshed = RelationshipSnapshot::BuildIncremental(
      *base, MakeRandomCorpus(7, 60), options);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ((*refreshed)->version(), 2u);
  EXPECT_EQ((*refreshed)->num_observations(), 60u);
  // The base snapshot is untouched (readers keep their view).
  EXPECT_EQ(base->num_observations(), 40u);
  EXPECT_EQ(base->version(), 1u);

  auto full = MustBuild(MakeRandomCorpus(7, 60), 2);
  EXPECT_EQ((*refreshed)->num_full(), full->num_full());
  EXPECT_EQ((*refreshed)->num_partial(), full->num_partial());
  EXPECT_EQ((*refreshed)->num_complementary(), full->num_complementary());
  EXPECT_TRUE(ScanSets(**refreshed) == ScanSets(*full));
  EXPECT_EQ((*refreshed)->fingerprint(), full->fingerprint());
}

TEST(SnapshotTest, IncrementalRefreshRejectsNonExtension) {
  auto base = MustBuild(MakeRandomCorpus(7, 40));
  auto wrong = RelationshipSnapshot::BuildIncremental(
      *base, MakeRandomCorpus(8, 60), {});
  EXPECT_TRUE(wrong.status().IsFailedPrecondition())
      << wrong.status().ToString();
  // A corpus *shorter* than the base cannot extend it either.
  auto shorter = RelationshipSnapshot::BuildIncremental(
      *base, MakeRandomCorpus(7, 20), {});
  EXPECT_TRUE(shorter.status().IsFailedPrecondition());
}

// --- RelationshipSnapshot: persistence ---------------------------------------

TEST(SnapshotTest, SaveLoadRoundTrip) {
  const std::string path = TempPath("snapshot_roundtrip.snap");
  auto snap = MustBuild(MakeRandomCorpus(11, 50), 3);
  ASSERT_TRUE(snap->SaveTo(path).ok());
  auto loaded = RelationshipSnapshot::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->version(), 3u);
  EXPECT_EQ((*loaded)->fingerprint(), snap->fingerprint());
  EXPECT_EQ((*loaded)->num_observations(), snap->num_observations());
  EXPECT_EQ((*loaded)->num_full(), snap->num_full());
  EXPECT_EQ((*loaded)->num_partial(), snap->num_partial());
  EXPECT_EQ((*loaded)->num_complementary(), snap->num_complementary());
  EXPECT_TRUE(ScanSets(**loaded) == ScanSets(*snap));
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadRejectsTruncationAndCorruption) {
  const std::string path = TempPath("snapshot_corrupt.snap");
  auto snap = MustBuild(MakeRunningExample());
  ASSERT_TRUE(snap->SaveTo(path).ok());
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());

  auto write = [&](const std::string& contents) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
  };
  // A sweep of strict truncations: every one is ParseError, never a crash.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += std::max<std::size_t>(1, bytes.size() / 97)) {
    write(bytes.substr(0, cut));
    auto r = RelationshipSnapshot::LoadFrom(path);
    ASSERT_FALSE(r.ok()) << "prefix " << cut << " accepted";
    EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
  }
  // Trailing garbage.
  write(bytes + "x");
  EXPECT_TRUE(RelationshipSnapshot::LoadFrom(path).status().IsParseError());
  // Bad magic.
  std::string flipped = bytes;
  flipped[0] ^= 0x5a;
  write(flipped);
  EXPECT_TRUE(RelationshipSnapshot::LoadFrom(path).status().IsParseError());
  // Missing file is IOError, not ParseError.
  EXPECT_TRUE(
      RelationshipSnapshot::LoadFrom("/no/such/dir/f").status().IsIOError());
  std::remove(path.c_str());
}

TEST(SnapshotTest, StagedSaveFaultLeavesPublishedFileIntact) {
  const std::string path = TempPath("snapshot_staged.snap");
  auto v1 = MustBuild(MakeRandomCorpus(2, 30), 1);
  ASSERT_TRUE(v1->SaveTo(path).ok());

  auto v2 = MustBuild(MakeRandomCorpus(2, 50), 2);
  {
    FaultInjector injector(1);
    injector.ArmNthCall(core::kFaultSnapshotSaveStage, 1);
    ScopedFaultInjection scope(&injector);
    EXPECT_TRUE(v2->SaveTo(path).IsIOError());
  }
  // The interrupted save never touched the published path: the old snapshot
  // still loads, at its old version.
  auto loaded = RelationshipSnapshot::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->version(), 1u);
  EXPECT_EQ((*loaded)->num_observations(), 30u);
  // A retry without the fault succeeds and swaps atomically.
  ASSERT_TRUE(v2->SaveTo(path).ok());
  loaded = RelationshipSnapshot::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->version(), 2u);
  std::remove(path.c_str());
}

// --- SnapshotStore -----------------------------------------------------------

TEST(SnapshotStoreTest, ReloadPublishesBumpedVersionAndKeepsLastGood) {
  SnapshotStore store;
  EXPECT_EQ(store.Current(), nullptr);
  store.Publish(MustBuild(MakeRandomCorpus(5, 40), 1));
  ASSERT_NE(store.Current(), nullptr);
  EXPECT_EQ(store.Current()->version(), 1u);

  // Extending reload: incremental path, version bump.
  ASSERT_TRUE(store.Reload(MakeRandomCorpus(5, 60), Deadline()).ok());
  EXPECT_EQ(store.Current()->version(), 2u);
  EXPECT_EQ(store.Current()->num_observations(), 60u);
  EXPECT_EQ(store.reloads(), 1u);

  // Non-extending reload: full rebuild, version still bumps.
  ASSERT_TRUE(store.Reload(MakeRandomCorpus(6, 30), Deadline()).ok());
  EXPECT_EQ(store.Current()->version(), 3u);
  EXPECT_EQ(store.Current()->num_observations(), 30u);
  EXPECT_EQ(store.reloads(), 2u);

  // A failing reload (injected build crash) keeps the last-good snapshot.
  const SnapshotPtr before = store.Current();
  {
    FaultInjector injector(1);
    injector.ArmNthCall(core::kFaultSnapshotBuild, 1);
    ScopedFaultInjection scope(&injector);
    EXPECT_TRUE(
        store.Reload(MakeRandomCorpus(9, 40), Deadline()).IsInternal());
  }
  EXPECT_EQ(store.Current(), before);
  EXPECT_EQ(store.reload_failures(), 1u);

  // A swap-fault (crash between build and publication) also degrades.
  {
    FaultInjector injector(1);
    injector.ArmNthCall(kFaultReloadSwap, 1);
    ScopedFaultInjection scope(&injector);
    EXPECT_FALSE(store.Reload(MakeRandomCorpus(9, 40), Deadline()).ok());
  }
  EXPECT_EQ(store.Current(), before);
  EXPECT_EQ(store.reload_failures(), 2u);

  // An expired deadline degrades the same way.
  EXPECT_TRUE(
      store.Reload(MakeRandomCorpus(9, 40), Deadline(0.0)).IsTimedOut());
  EXPECT_EQ(store.Current(), before);
  EXPECT_EQ(store.reload_failures(), 3u);
}

// --- End-to-end server/client ------------------------------------------------

class ServerClientTest : public ::testing::Test {
 protected:
  void StartServer(qb::Corpus corpus, const ServerOptions& options) {
    snapshot_ = MustBuild(std::move(corpus), 1);
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->Start(snapshot_).ok());
    ASSERT_NE(server_->port(), 0);
  }

  Client MakeClient(int max_retries = 5) {
    ClientOptions copts;
    copts.port = server_->port();
    copts.max_retries = max_retries;
    copts.initial_backoff_ms = 1;
    copts.max_backoff_ms = 20;
    return Client(copts);
  }

  RelationshipSnapshot::Ptr snapshot_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerClientTest, PointLookupsAndScanMatchSnapshot) {
  StartServer(MakeRandomCorpus(31, 60), ServerOptions{});
  Client client = MakeClient();

  auto version = client.Ping();
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(version.value(), 1u);

  for (ObsId id = 0; id < snapshot_->num_observations(); id += 7) {
    auto got = client.Containers(id);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), snapshot_->Containers(id, Deadline()).value());

    got = client.Contained(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), snapshot_->Contained(id, Deadline()).value());

    got = client.Complements(id);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), snapshot_->Complements(id, Deadline()).value());

    auto partial = client.Partial(id, 0.3);
    ASSERT_TRUE(partial.ok());
    auto want = snapshot_->PartiallyContained(id, 0.3, Deadline()).value();
    ASSERT_EQ(partial->size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*partial)[i].first, want[i].other);
      EXPECT_NEAR((*partial)[i].second, want[i].degree, 1e-12);
    }
  }

  auto scan = client.Scan(0);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  std::size_t full = 0, partial = 0, compl_count = 0;
  for (const auto& rec : scan.value()) {
    if (rec.kind == 'F') ++full;
    if (rec.kind == 'P') ++partial;
    if (rec.kind == 'C') ++compl_count;
  }
  EXPECT_EQ(full, snapshot_->num_full());
  EXPECT_EQ(partial, snapshot_->num_partial());
  EXPECT_EQ(compl_count, snapshot_->num_complementary());

  // A limited scan truncates.
  auto limited = client.Scan(3);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 3u);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*stats)[kStatsObservations], snapshot_->num_observations());
  EXPECT_EQ((*stats)[kStatsFull], snapshot_->num_full());
  EXPECT_GT((*stats)[kStatsRequests], 0u);

  auto missing = client.Containers(
      static_cast<ObsId>(snapshot_->num_observations()));
  EXPECT_TRUE(missing.status().IsNotFound()) << missing.status().ToString();
}

TEST_F(ServerClientTest, SequentialRequestsReuseOneConnection) {
  StartServer(MakeRunningExample(), ServerOptions{});
  Client client = MakeClient();
  for (int i = 0; i < 50; ++i) {
    auto v = client.Ping();
    ASSERT_TRUE(v.ok()) << "iteration " << i << ": " << v.status().ToString();
  }
  EXPECT_GE(server_->requests_total(), 50u);
}

TEST_F(ServerClientTest, ReloadBumpsVersionVisibleToClients) {
  StartServer(MakeRandomCorpus(5, 40), ServerOptions{});
  Client client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  ASSERT_TRUE(server_->Reload(MakeRandomCorpus(5, 60), Deadline()).ok());
  auto version = client.Ping();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 2u);
  // Answers now come from the refreshed snapshot (60 observations).
  auto got = client.Containers(55);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
}

TEST_F(ServerClientTest, NullSnapshotAnswersInternalUntilReload) {
  ServerOptions options;
  server_ = std::make_unique<Server>(options);
  ASSERT_TRUE(server_->Start(nullptr).ok());
  Client client = MakeClient();
  EXPECT_TRUE(client.Ping().status().IsInternal());
  ASSERT_TRUE(server_->Reload(MakeRunningExample(), Deadline()).ok());
  auto version = client.Ping();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 1u);
}

TEST_F(ServerClientTest, MalformedFrameGetsBadRequestThenClose) {
  StartServer(MakeRunningExample(), ServerOptions{});
  auto conn = ConnectTo("127.0.0.1", server_->port(), Deadline(2.0));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE(WriteFrame(conn->get(), "\xff garbage \xff", Deadline(2.0)).ok());
  std::string payload;
  ASSERT_TRUE(
      ReadFrame(conn->get(), &payload, kDefaultMaxFrameBytes, Deadline(2.0))
          .ok());
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, RespCode::kBadRequest);
  // The server hangs up after a protocol error (stream is desynced).
  const Status eof =
      ReadFrame(conn->get(), &payload, kDefaultMaxFrameBytes, Deadline(2.0));
  EXPECT_TRUE(eof.IsOutOfRange() || eof.IsIOError()) << eof.ToString();
}

TEST_F(ServerClientTest, OversizeFrameGetsBadRequestThenClose) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  StartServer(MakeRunningExample(), options);
  auto conn = ConnectTo("127.0.0.1", server_->port(), Deadline(2.0));
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(
      WriteFrame(conn->get(), std::string(1024, 'x'), Deadline(2.0)).ok());
  std::string payload;
  ASSERT_TRUE(
      ReadFrame(conn->get(), &payload, kDefaultMaxFrameBytes, Deadline(2.0))
          .ok());
  auto resp = DecodeResponse(payload);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, RespCode::kBadRequest);
}

TEST_F(ServerClientTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.retry_after_ms = 1;
  StartServer(MakeRandomCorpus(37, 200), options);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> client_sheds{0};
  std::vector<std::thread> flooders;
  for (int t = 0; t < 4; ++t) {
    flooders.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = server_->port();
      copts.max_retries = 0;  // surface every shed instead of absorbing it
      copts.jitter_seed = static_cast<uint64_t>(t + 1);
      Client client(copts);
      Request req;
      req.op = Op::kScan;
      req.limit = 10000;
      while (!stop.load(std::memory_order_relaxed)) {
        // With max_retries=0 a shed surfaces as ResourceExhausted (and is
        // tallied in sheds_seen) instead of being absorbed by backoff.
        (void)client.Call(req);
      }
      client_sheds.fetch_add(client.sheds_seen(), std::memory_order_relaxed);
    });
  }
  const Deadline give_up(10.0);
  while (server_->shed_total() == 0 && !give_up.Expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : flooders) t.join();
  EXPECT_GT(server_->shed_total(), 0u) << "no shed observed under overload";
  EXPECT_GT(client_sheds.load(), 0u);
  // Shed responses carry the configured retry-after hint.
  Client probe = MakeClient();
  EXPECT_TRUE(probe.Ping().ok());  // server still serving after the storm
}

TEST_F(ServerClientTest, QueuedRequestsHonorTheirDeadline) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 64;
  StartServer(MakeRandomCorpus(37, 200), options);

  std::atomic<bool> stop{false};
  std::vector<std::thread> flooders;
  for (int t = 0; t < 4; ++t) {
    flooders.emplace_back([&, t] {
      ClientOptions copts;
      copts.port = server_->port();
      copts.max_retries = 1;
      copts.jitter_seed = static_cast<uint64_t>(t + 10);
      Client client(copts);
      Request req;
      req.op = Op::kScan;
      req.limit = 10000;
      while (!stop.load(std::memory_order_relaxed)) {
        (void)client.Call(req);
      }
    });
  }
  // Probe with 1ms deadlines until one expires while queued behind scans.
  Client probe = MakeClient(0);
  Request ping;
  ping.op = Op::kPing;
  ping.deadline_ms = 1;
  bool saw_timeout = false;
  const Deadline give_up(10.0);
  while (!give_up.Expired() && server_->deadline_expired_total() == 0) {
    auto resp = probe.Call(ping);
    if (resp.ok() && resp->code == RespCode::kDeadlineExceeded) {
      saw_timeout = true;
      break;
    }
    if (!resp.ok()) probe.Disconnect();
  }
  stop.store(true);
  for (auto& t : flooders) t.join();
  EXPECT_TRUE(saw_timeout || server_->deadline_expired_total() > 0)
      << "no deadline expiry observed under queueing";
}

TEST_F(ServerClientTest, StopDrainsAndRefusesFurtherWork) {
  StartServer(MakeRunningExample(), ServerOptions{});
  const uint16_t port = server_->port();
  Client client = MakeClient(0);
  ASSERT_TRUE(client.Ping().ok());

  server_->Stop();
  server_->Stop();  // idempotent

  // The old connection is gone and new connects are refused.
  EXPECT_FALSE(client.Ping().ok());
  auto conn = ConnectTo("127.0.0.1", port, Deadline(0.5));
  EXPECT_FALSE(conn.ok());

  // Start after Stop is refused (one-shot lifecycle).
  EXPECT_TRUE(server_->Start(snapshot_).IsFailedPrecondition());
}

// Value of the single-sample line `<name> <value>` in a Prometheus text
// exposition; npos-like sentinel when absent.
uint64_t ScrapedValue(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    if (at == 0 || text[at - 1] == '\n') {
      return std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
    }
    ++at;
  }
  return std::numeric_limits<uint64_t>::max();
}

// Live value of a counter in the global registry (0 when unregistered).
uint64_t GlobalCounterValue(const std::string& name) {
  for (const obs::CounterSample& c :
       obs::MetricsRegistry::Global().Snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST_F(ServerClientTest, MetricsScrapeCountsRequestsExactly) {
  StartServer(MakeRunningExample(), ServerOptions{});
  Client client = MakeClient();
  // The registry is process-global, so assert on deltas from this point.
  const uint64_t ping_before =
      GlobalCounterValue("rdfcube_server_ping_requests_total");
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(client.Ping().ok());
  }
  auto text = client.Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // The per-op counter ticks after the scrape renders, so the scrape sees
  // exactly the requests that preceded it.
  EXPECT_EQ(ScrapedValue(*text, "rdfcube_server_ping_requests_total"),
            ping_before + 17);
  EXPECT_NE(text->find("# TYPE rdfcube_server_ping_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text->find("# TYPE rdfcube_server_ping_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text->find("rdfcube_server_ping_latency_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text->find("# TYPE rdfcube_server_queue_wait_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text->find("# TYPE rdfcube_server_in_flight_requests gauge\n"),
            std::string::npos);
  // A second scrape sees the first one's per-op counter tick.
  const uint64_t metrics_count_in_first =
      ScrapedValue(*text, "rdfcube_server_metrics_requests_total");
  auto again = client.Metrics();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(ScrapedValue(*again, "rdfcube_server_metrics_requests_total"),
            metrics_count_in_first + 1);
}

TEST_F(ServerClientTest, RequestIdIsEchoedOnWorkerAndInlinePaths) {
  StartServer(MakeRunningExample(), ServerOptions{});
  Client client = MakeClient();
  Request req;
  req.op = Op::kPing;  // worker path (admission queue)
  req.request_id = 0xabcddcba12344321ull;
  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->request_id, req.request_id);
  req.op = Op::kMetrics;  // reactor-inline path (admission-exempt)
  req.request_id = 0x1111222233334444ull;
  resp = client.Call(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->request_id, req.request_id);
  // Requests sent without an id get a client-stamped one and still match
  // (a mismatch would surface as ParseError from the echo check).
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerClientTest, SlowlogRecordsWorkerRequests) {
  ServerOptions options;
  options.slowlog_capacity = 8;
  StartServer(MakeRandomCorpus(31, 60), options);
  Client client = MakeClient();
  Request req;
  req.op = Op::kScan;
  req.request_id = 777;
  ASSERT_TRUE(client.Call(req).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Ping().ok());
  }
  auto log = client.Slowlog();
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log->front(), '[');
  EXPECT_EQ(log->back(), ']');
  EXPECT_NE(log->find("\"op\":\"scan\""), std::string::npos);
  EXPECT_NE(log->find("\"request_id\":777"), std::string::npos);
  EXPECT_NE(log->find("\"op\":\"ping\""), std::string::npos);
  EXPECT_NE(log->find("\"snapshot_version\":1"), std::string::npos);
  // The slowlog dump itself is reactor-inline and never self-records.
  EXPECT_EQ(log->find("\"op\":\"slowlog\""), std::string::npos);
}

TEST_F(ServerClientTest, SlowlogCapacityZeroDumpsEmpty) {
  ServerOptions options;
  options.slowlog_capacity = 0;
  StartServer(MakeRunningExample(), options);
  Client client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  auto log = client.Slowlog();
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(*log, "[]");
}

TEST_F(ServerClientTest, TraceDumpCapturesABoundedWindow) {
  ASSERT_FALSE(obs::TraceCollector::Global().enabled());
  StartServer(MakeRunningExample(), ServerOptions{});
  Client client = MakeClient();
  auto json = client.TraceDump(/*window_ms=*/30);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"traceEvents\""), std::string::npos);
  // The on-demand capture toggles the collector back off afterwards.
  EXPECT_FALSE(obs::TraceCollector::Global().enabled());
}

TEST_F(ServerClientTest, ObsOpsCanBeForcedThroughAdmission) {
  ServerOptions options;
  options.obs_ops_bypass_admission = false;
  StartServer(MakeRunningExample(), options);
  Client client = MakeClient();
  const uint64_t before = server_->requests_total();
  ASSERT_TRUE(client.Metrics().ok());
  ASSERT_TRUE(client.Slowlog().ok());
  // Through admission, scrapes count as regular requests...
  EXPECT_EQ(server_->requests_total(), before + 2);
}

TEST_F(ServerClientTest, InlineObsOpsDoNotCountTowardRequestsTotal) {
  StartServer(MakeRunningExample(), ServerOptions{});  // bypass on (default)
  Client client = MakeClient();
  ASSERT_TRUE(client.Ping().ok());
  const uint64_t before = server_->requests_total();
  ASSERT_TRUE(client.Metrics().ok());
  ASSERT_TRUE(client.Slowlog().ok());
  // ...but on the reactor-inline path they stay out of the worker tally,
  // like every other inline response (shed, bad request).
  EXPECT_EQ(server_->requests_total(), before);
}

TEST_F(ServerClientTest, ClientBacksOffWhenServerIsGone) {
  ClientOptions copts;
  copts.port = 1;  // nothing listens on port 1
  copts.max_retries = 2;
  copts.initial_backoff_ms = 1;
  copts.max_backoff_ms = 4;
  copts.connect_timeout_seconds = 0.1;
  Client client(copts);
  const Status st = client.Ping().status();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace server
}  // namespace rdfcube
