// Byte-mutation fuzz for RelationshipSnapshot::LoadFrom (DESIGN.md §5h):
// every single-byte corruption of a valid snapshot file must come back as a
// clean Status (ParseError/IOError) or, rarely, as a snapshot that still
// validates — never a crash, hang, or sanitizer report. The suite is wired
// into scripts/check_sanitizers.sh so the sweep also runs under ASan/UBSan,
// where an out-of-bounds read caused by a forged length field would abort.

#include "core/snapshot.h"

#include <cstdint>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "qb/binary_io.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace core {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(static_cast<bool>(out)) << path;
}

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RelationshipSnapshot::BuildOptions options;
    auto snap =
        RelationshipSnapshot::Build(testutil::MakeRunningExample(), options);
    ASSERT_TRUE(snap.ok()) << snap.status().message();
    path_ = TempPath("fuzz_snapshot.bin");
    ASSERT_TRUE((*snap)->SaveTo(path_).ok());
    bytes_ = ReadAll(path_);
    ASSERT_GT(bytes_.size(), 32u);
  }

  // Loads `mutated` through the real file path and asserts the result is
  // either a clean error or a valid snapshot — the call must simply return.
  void ExpectCleanOutcome(const std::string& mutated,
                          const std::string& label) {
    const std::string path = TempPath("fuzz_snapshot_mut.bin");
    WriteAll(path, mutated);
    auto loaded = RelationshipSnapshot::LoadFrom(path);
    if (loaded.ok()) {
      // A mutation that survives every structural check must still hand back
      // a usable snapshot (the fingerprint makes this near-impossible, but
      // "ok" is an acceptable outcome for e.g. identity mutations).
      EXPECT_GT((*loaded)->observations().size(), 0u) << label;
    } else {
      EXPECT_FALSE(loaded.status().message().empty()) << label;
    }
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotFuzzTest, EveryByteFlippedLoadsCleanly) {
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    std::string mutated = bytes_;
    mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^
                                   0xffu);
    ExpectCleanOutcome(mutated, "flip at byte " + std::to_string(i));
  }
}

TEST_F(SnapshotFuzzTest, EveryByteIncrementedLoadsCleanly) {
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    std::string mutated = bytes_;
    mutated[i] =
        static_cast<char>(static_cast<unsigned char>(mutated[i]) + 1u);
    ExpectCleanOutcome(mutated, "increment at byte " + std::to_string(i));
  }
}

TEST_F(SnapshotFuzzTest, EveryByteZeroedAndMaxedLoadsCleanly) {
  // 0x00 collapses length fields; 0xff inflates them — both directions of
  // the forged-length attack the section clamps in LoadFrom exist for.
  for (const unsigned char value : {0x00u, 0xffu}) {
    for (std::size_t i = 0; i < bytes_.size(); ++i) {
      std::string mutated = bytes_;
      mutated[i] = static_cast<char>(value);
      ExpectCleanOutcome(mutated, "set byte " + std::to_string(i) + " to " +
                                      std::to_string(value));
    }
  }
}

TEST_F(SnapshotFuzzTest, EveryTruncationLoadsCleanly) {
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    ExpectCleanOutcome(bytes_.substr(0, len),
                       "truncate to " + std::to_string(len));
  }
}

TEST_F(SnapshotFuzzTest, MagicMutationsAreRejected) {
  // Any corruption of the 8-byte magic must be rejected outright, never
  // interpreted as a (different) format.
  for (std::size_t i = 0; i < 8; ++i) {
    std::string mutated = bytes_;
    mutated[i] = static_cast<char>(static_cast<unsigned char>(mutated[i]) ^
                                   0x01u);
    const std::string path = TempPath("fuzz_snapshot_magic.bin");
    WriteAll(path, mutated);
    auto loaded = RelationshipSnapshot::LoadFrom(path);
    ASSERT_FALSE(loaded.ok()) << "magic byte " << i;
    EXPECT_NE(loaded.status().message().find("bad magic"), std::string::npos)
        << loaded.status().message();
  }
}

TEST_F(SnapshotFuzzTest, UntouchedFileRoundTrips) {
  auto loaded = RelationshipSnapshot::LoadFrom(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ((*loaded)->observations().size(), 10u);
}

}  // namespace
}  // namespace core
}  // namespace rdfcube
