// Tests for the SPARQL subset: parser, evaluator (BGP joins, property paths,
// NOT EXISTS, DISTINCT, limits), and the paper's relationship queries run
// against the RDF export of the running example.

#include <gtest/gtest.h>

#include <set>

#include "qb/exporter.h"
#include "rdf/turtle_parser.h"
#include "sparql/engine.h"
#include "sparql/paper_queries.h"
#include "sparql/parser.h"
#include "tests/test_corpus.h"

namespace rdfcube {
namespace sparql {
namespace {

rdf::TripleStore ParseStore(const char* ttl) {
  rdf::TripleStore store;
  const Status st = rdf::ParseTurtle(ttl, &store);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return store;
}

constexpr char kGeoDoc[] = R"(
@prefix skos: <http://www.w3.org/2004/02/skos/core#> .
@prefix e: <http://e/> .
e:Europe skos:broader e:World .
e:Greece skos:broader e:Europe .
e:Athens skos:broader e:Greece .
e:Italy skos:broader e:Europe .
e:Rome skos:broader e:Italy .
e:a e:locatedIn e:Athens .
e:b e:locatedIn e:Rome .
)";

// --- Parser ------------------------------------------------------------------

TEST(SparqlParserTest, ParsesSelectWithFilters) {
  auto q = ParseQuery(
      "PREFIX e: <http://e/>\n"
      "SELECT DISTINCT ?x ?y WHERE {\n"
      "  ?x e:p ?y .\n"
      "  FILTER(?x != ?y)\n"
      "  FILTER NOT EXISTS { ?x e:q ?y . }\n"
      "}");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->distinct);
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(q->where.patterns.size(), 1u);
  ASSERT_EQ(q->where.filters.size(), 2u);
  EXPECT_EQ(q->where.filters[0].kind, Filter::Kind::kNotEquals);
  EXPECT_EQ(q->where.filters[1].kind, Filter::Kind::kNotExists);
  ASSERT_NE(q->where.filters[1].group, nullptr);
  EXPECT_EQ(q->where.filters[1].group->patterns.size(), 1u);
}

TEST(SparqlParserTest, ParsesPropertyPaths) {
  auto q = ParseQuery(
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "SELECT ?a ?b WHERE { ?a skos:broader/skos:broader* ?b . }");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.patterns.size(), 1u);
  const auto& path = q->where.patterns[0].path;
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].mod, PathStep::Mod::kOne);
  EXPECT_EQ(path[1].mod, PathStep::Mod::kStar);
}

TEST(SparqlParserTest, SinglePlainPredicateIsNotAPath) {
  auto q = ParseQuery("PREFIX e: <http://e/>\nSELECT ?a WHERE { ?a e:p e:o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->where.patterns[0].path.empty());
  EXPECT_FALSE(q->where.patterns[0].p.is_var);
}

TEST(SparqlParserTest, AKeywordExpandsToRdfType) {
  auto q = ParseQuery("PREFIX e: <http://e/>\nSELECT ?a WHERE { ?a a e:C . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.patterns[0].p.term.value(),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(SparqlParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("SELECT WHERE { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ?p ?o }").ok());  // missing WHERE
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x nope:p ?o . }").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?x WHERE { ?x <p> ?o . FILTER(?x = ?o) }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?o . } trailing").ok());
}

// --- Evaluator ------------------------------------------------------------------

TEST(SparqlEngineTest, SimpleBgpJoin) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(store,
                           "PREFIX e: <http://e/>\n"
                           "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
                           "SELECT ?x ?c WHERE {\n"
                           "  ?x e:locatedIn ?city .\n"
                           "  ?city skos:broader ?c .\n"
                           "}");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);  // a->Greece, b->Italy
}

TEST(SparqlEngineTest, PropertyPathPlusSemantics) {
  auto store = ParseStore(kGeoDoc);
  // Strict ancestors of Athens.
  auto rows = EvaluateText(
      store,
      "PREFIX e: <http://e/>\n"
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "SELECT ?anc WHERE { e:Athens skos:broader/skos:broader* ?anc . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // Greece, Europe, World
}

TEST(SparqlEngineTest, PropertyPathStarIncludesSelf) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "PREFIX e: <http://e/>\n"
      "SELECT ?anc WHERE { e:Athens skos:broader* ?anc . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // Athens itself + 3 ancestors
}

TEST(SparqlEngineTest, PathWithBoundObjectFilters) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "PREFIX e: <http://e/>\n"
      "SELECT ?d WHERE { ?d skos:broader/skos:broader* e:Europe . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // Greece, Athens, Italy, Rome
}

TEST(SparqlEngineTest, NotEqualsFilter) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(store,
                           "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
                           "SELECT ?a ?b WHERE {\n"
                           "  ?a skos:broader ?m . ?b skos:broader ?m .\n"
                           "  FILTER(?a != ?b)\n"
                           "}");
  ASSERT_TRUE(rows.ok());
  // Siblings under Europe: (Greece, Italy) and (Italy, Greece).
  EXPECT_EQ(rows->size(), 2u);
}

TEST(SparqlEngineTest, NotExistsExcludes) {
  auto store = ParseStore(kGeoDoc);
  // Concepts with a broader but nothing below them (leaves of skos:broader).
  auto rows = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "SELECT DISTINCT ?x WHERE {\n"
      "  ?x skos:broader ?p .\n"
      "  FILTER NOT EXISTS { ?below skos:broader ?x . }\n"
      "}");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // Athens, Rome
}

TEST(SparqlEngineTest, DistinctCollapsesDuplicates) {
  auto store = ParseStore(kGeoDoc);
  auto all = EvaluateText(store,
                          "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
                          "SELECT ?p WHERE { ?x skos:broader ?p . }");
  auto distinct = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "SELECT DISTINCT ?p WHERE { ?x skos:broader ?p . }");
  ASSERT_TRUE(all.ok() && distinct.ok());
  EXPECT_EQ(all->size(), 5u);
  EXPECT_EQ(distinct->size(), 4u);  // World, Europe, Greece, Italy
}

TEST(SparqlEngineTest, ConstantAbsentFromStoreYieldsEmpty) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(store,
                           "PREFIX e: <http://e/>\n"
                           "SELECT ?x WHERE { ?x e:neverUsed ?y . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(SparqlEngineTest, MaxRowsTriggersResourceExhausted) {
  auto store = ParseStore(kGeoDoc);
  EvalOptions options;
  options.max_rows = 1;
  auto rows = EvaluateText(store,
                           "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
                           "SELECT ?x ?p WHERE { ?x skos:broader ?p . }",
                           options);
  EXPECT_TRUE(rows.status().IsResourceExhausted());
}

TEST(SparqlEngineTest, DeadlineTriggersTimeout) {
  // Large enough store that 2048 candidate triples are visited.
  rdf::TripleStore store;
  for (int i = 0; i < 3000; ++i) {
    store.Insert(rdf::Term::Iri("s" + std::to_string(i)),
                 rdf::Term::Iri("http://e/p"),
                 rdf::Term::Iri("o" + std::to_string(i)));
  }
  EvalOptions options;
  options.deadline = Deadline(0.0);
  auto rows = EvaluateText(
      store, "PREFIX e: <http://e/>\nSELECT ?x WHERE { ?x e:p ?y . }",
      options);
  EXPECT_TRUE(rows.status().IsTimedOut());
}

TEST(SparqlEngineTest, UnionCombinesBranches) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "PREFIX e: <http://e/>\n"
      "SELECT DISTINCT ?x WHERE {\n"
      "  { ?x skos:broader e:Greece . }\n"
      "  UNION\n"
      "  { ?x skos:broader e:Italy . }\n"
      "}");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);  // Athens, Rome
}

TEST(SparqlEngineTest, UnionDistinctDeduplicatesAcrossBranches) {
  auto store = ParseStore(kGeoDoc);
  // Both branches yield Athens.
  auto rows = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "PREFIX e: <http://e/>\n"
      "SELECT DISTINCT ?x WHERE {\n"
      "  { ?x skos:broader e:Greece . }\n"
      "  UNION\n"
      "  { e:a e:locatedIn ?x . }\n"
      "}");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  auto dup = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "PREFIX e: <http://e/>\n"
      "SELECT ?x WHERE {\n"
      "  { ?x skos:broader e:Greece . }\n"
      "  UNION\n"
      "  { e:a e:locatedIn ?x . }\n"
      "}");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->size(), 2u);  // without DISTINCT both stay
}

TEST(SparqlEngineTest, LimitTruncatesResults) {
  auto store = ParseStore(kGeoDoc);
  auto rows = EvaluateText(
      store,
      "PREFIX skos: <http://www.w3.org/2004/02/skos/core#>\n"
      "SELECT ?x ?p WHERE { ?x skos:broader ?p . } LIMIT 2");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(SparqlParserTest2, UnionRequiresTwoBranches) {
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { { ?x <p> ?y . } }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x <p> ?y . } LIMIT").ok());
}

// --- The paper's queries on the running example --------------------------------

class PaperQueriesTest : public ::testing::Test {
 protected:
  PaperQueriesTest() {
    qb::Corpus corpus = testutil::MakeRunningExample();
    EXPECT_TRUE(qb::ExportCorpusToRdf(corpus, &store_).ok());
  }

  static std::pair<std::string, std::string> Obs(const char* a,
                                                 const char* b) {
    return {std::string("urn:rdfcube:obs:") + a,
            std::string("urn:rdfcube:obs:") + b};
  }

  rdf::TripleStore store_;
};

TEST_F(PaperQueriesTest, ComplementarityQueryFindsThePairs) {
  auto result =
      RunRelationshipQuery(store_, ComplementarityQuery(), Deadline(30.0));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->timed_out);
  std::set<std::pair<std::string, std::string>> pairs(result->pairs.begin(),
                                                      result->pairs.end());
  // Symmetric query: both orientations of (o11,o31) and (o13,o35).
  EXPECT_TRUE(pairs.count(Obs("o11", "o31")));
  EXPECT_TRUE(pairs.count(Obs("o31", "o11")));
  EXPECT_TRUE(pairs.count(Obs("o13", "o35")));
  EXPECT_TRUE(pairs.count(Obs("o35", "o13")));
  // Relaxed-schema semantics (the paper: "we have relaxed the conditions
  // presented in section 2"): o12 (Austin, 2011, Male) and o35 (Austin,
  // 2011, no sex dimension) count as complementary here because the sex
  // dimension is simply not shared — the exact Def. 3 applied by the native
  // engines rejects the pair since o12's unshared value (Male) is not the
  // root. This test documents the difference.
  EXPECT_TRUE(pairs.count(Obs("o12", "o35")));
  EXPECT_TRUE(pairs.count(Obs("o35", "o12")));
  EXPECT_EQ(pairs.size(), 6u);
}

TEST_F(PaperQueriesTest, PartialContainmentQueryDetectsStrictAncestry) {
  auto result =
      RunRelationshipQuery(store_, PartialContainmentQuery(), Deadline(30.0));
  ASSERT_TRUE(result.ok());
  std::set<std::pair<std::string, std::string>> pairs(result->pairs.begin(),
                                                      result->pairs.end());
  // Detection-only semantics (strict ancestor on >= 1 dimension, no measure
  // gate): o21 over the Greek city observations, o22 over Rome, sex Total
  // over Male, etc. Spot-check the headline pairs.
  EXPECT_TRUE(pairs.count(Obs("o21", "o32")));
  EXPECT_TRUE(pairs.count(Obs("o21", "o34")));
  EXPECT_TRUE(pairs.count(Obs("o22", "o33")));
  EXPECT_TRUE(pairs.count(Obs("o21", "o31")));  // refArea path only
  EXPECT_TRUE(pairs.count(Obs("o13", "o12")));  // sex Total > Male
  // Nothing contains o21 on any dimension strictly.
  for (const auto& [a, b] : pairs) {
    EXPECT_NE(b, "urn:rdfcube:obs:o21");
    (void)a;
  }
}

TEST_F(PaperQueriesTest, FullContainmentQueryMatchesUniversalCheck) {
  auto result =
      RunRelationshipQuery(store_, FullContainmentQuery(), Deadline(30.0));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->timed_out);
  std::set<std::pair<std::string, std::string>> pairs(result->pairs.begin(),
                                                      result->pairs.end());
  // Relaxed-schema semantics (no measure gate, ∃ strict + ∀ non-violating):
  // the dimensional-full directed pairs with at least one strict dimension.
  EXPECT_TRUE(pairs.count(Obs("o21", "o32")));
  EXPECT_TRUE(pairs.count(Obs("o21", "o34")));
  EXPECT_TRUE(pairs.count(Obs("o22", "o33")));
  EXPECT_TRUE(pairs.count(Obs("o13", "o12")));
  // (o35, o12) is *not* found: the strict dimension would be sex, but o35's
  // dataset schema lacks sex entirely, so the query sees no shared triple —
  // the root-padding of the native engines has no RDF counterpart (another
  // facet of the relaxed SPARQL semantics).
  EXPECT_FALSE(pairs.count(Obs("o35", "o12")));
  // Equal-coordinate pairs (o11/o31) have no strict dimension: excluded.
  EXPECT_FALSE(pairs.count(Obs("o11", "o31")));
  // Reverse directions must not appear.
  EXPECT_FALSE(pairs.count(Obs("o32", "o21")));
  EXPECT_FALSE(pairs.count(Obs("o12", "o13")));
}

TEST_F(PaperQueriesTest, TimeoutIsReportedNotFatal) {
  auto result =
      RunRelationshipQuery(store_, FullContainmentQuery(), Deadline(1e-9));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
  EXPECT_FALSE(result->out_of_memory);
}

TEST_F(PaperQueriesTest, RowCapIsReportedAsOutOfMemory) {
  auto result = RunRelationshipQuery(store_, PartialContainmentQuery(),
                                     Deadline(30.0), 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->out_of_memory);
}

}  // namespace
}  // namespace sparql
}  // namespace rdfcube
