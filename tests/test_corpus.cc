#include "tests/test_corpus.h"

#include <cassert>
#include <vector>

namespace rdfcube {
namespace testutil {

namespace {

void Check(const Status& status) {
  assert(status.ok());
  (void)status;
}

}  // namespace

qb::Corpus MakeRunningExample() {
  qb::CorpusBuilder b;
  // refArea (Figure 1 / Table 2 column order).
  Check(b.AddDimension(kRefArea, "World"));
  Check(b.AddCode(kRefArea, "Europe", "World"));
  Check(b.AddCode(kRefArea, "America", "World"));
  Check(b.AddCode(kRefArea, "Greece", "Europe"));
  Check(b.AddCode(kRefArea, "Italy", "Europe"));
  Check(b.AddCode(kRefArea, "Athens", "Greece"));
  Check(b.AddCode(kRefArea, "Ioannina", "Greece"));
  Check(b.AddCode(kRefArea, "Rome", "Italy"));
  Check(b.AddCode(kRefArea, "US", "America"));
  Check(b.AddCode(kRefArea, "TX", "US"));
  Check(b.AddCode(kRefArea, "Austin", "TX"));
  // refPeriod.
  Check(b.AddDimension(kRefPeriod, "AllTime"));
  Check(b.AddCode(kRefPeriod, "2001", "AllTime"));
  Check(b.AddCode(kRefPeriod, "2011", "AllTime"));
  Check(b.AddCode(kRefPeriod, "Jan2011", "2011"));
  Check(b.AddCode(kRefPeriod, "Feb2011", "2011"));
  // sex.
  Check(b.AddDimension(kSex, "Total"));
  Check(b.AddCode(kSex, "Female", "Total"));
  Check(b.AddCode(kSex, "Male", "Total"));

  Check(b.AddMeasure(kPopulation));
  Check(b.AddMeasure(kUnemployment));
  Check(b.AddMeasure(kPoverty));

  Check(b.AddDataset("D1", {kRefArea, kRefPeriod, kSex}, {kPopulation}));
  Check(b.AddDataset("D2", {kRefArea, kRefPeriod},
                     {kUnemployment, kPoverty}));
  Check(b.AddDataset("D3", {kRefArea, kRefPeriod}, {kUnemployment}));

  Check(b.AddObservation("D1", "o11",
                         {{kRefArea, "Athens"},
                          {kRefPeriod, "2001"},
                          {kSex, "Total"}},
                         {{kPopulation, 5.0e6}}));
  Check(b.AddObservation("D1", "o12",
                         {{kRefArea, "Austin"},
                          {kRefPeriod, "2011"},
                          {kSex, "Male"}},
                         {{kPopulation, 445000}}));
  Check(b.AddObservation("D1", "o13",
                         {{kRefArea, "Austin"},
                          {kRefPeriod, "2011"},
                          {kSex, "Total"}},
                         {{kPopulation, 885000}}));
  Check(b.AddObservation("D2", "o21",
                         {{kRefArea, "Greece"}, {kRefPeriod, "2011"}},
                         {{kUnemployment, 26.0}, {kPoverty, 15.0}}));
  Check(b.AddObservation("D2", "o22",
                         {{kRefArea, "Italy"}, {kRefPeriod, "2011"}},
                         {{kUnemployment, 20.0}, {kPoverty, 10.0}}));
  Check(b.AddObservation("D3", "o31",
                         {{kRefArea, "Athens"}, {kRefPeriod, "2001"}},
                         {{kUnemployment, 10.0}}));
  Check(b.AddObservation("D3", "o32",
                         {{kRefArea, "Athens"}, {kRefPeriod, "Jan2011"}},
                         {{kUnemployment, 30.0}}));
  Check(b.AddObservation("D3", "o33",
                         {{kRefArea, "Rome"}, {kRefPeriod, "Feb2011"}},
                         {{kUnemployment, 7.0}}));
  Check(b.AddObservation("D3", "o34",
                         {{kRefArea, "Ioannina"}, {kRefPeriod, "Jan2011"}},
                         {{kUnemployment, 15.0}}));
  Check(b.AddObservation("D3", "o35",
                         {{kRefArea, "Austin"}, {kRefPeriod, "2011"}},
                         {{kUnemployment, 3.0}}));

  auto corpus = std::move(b).Build();
  assert(corpus.ok());
  return std::move(corpus).value();
}

qb::Corpus MakeRandomCorpus(uint64_t seed, std::size_t num_obs,
                            std::size_t num_dims, std::size_t num_datasets) {
  Rng rng(seed);
  qb::CorpusBuilder b;

  // Random tree code lists.
  std::vector<std::string> dim_iris;
  std::vector<std::vector<std::string>> codes_of_dim(num_dims);
  for (std::size_t d = 0; d < num_dims; ++d) {
    const std::string dim = "rand:dim" + std::to_string(d);
    dim_iris.push_back(dim);
    const std::string root = "d" + std::to_string(d) + "ALL";
    Check(b.AddDimension(dim, root));
    codes_of_dim[d].push_back(root);
    std::vector<std::string> frontier = {root};
    const std::size_t depth = 1 + rng.Uniform(3);
    for (std::size_t level = 0; level < depth; ++level) {
      std::vector<std::string> next;
      for (const std::string& parent : frontier) {
        const std::size_t fanout = 2 + rng.Uniform(3);
        for (std::size_t f = 0; f < fanout; ++f) {
          const std::string code = parent + "." + std::to_string(f);
          Check(b.AddCode(dim, code, parent));
          codes_of_dim[d].push_back(code);
          next.push_back(code);
        }
      }
      frontier = std::move(next);
    }
  }

  // Measures: num_datasets + 1; dataset i uses measures {i, last} so every
  // pair of datasets overlaps via the shared last measure.
  std::vector<std::string> measures;
  for (std::size_t m = 0; m <= num_datasets; ++m) {
    measures.push_back("rand:m" + std::to_string(m));
    Check(b.AddMeasure(measures.back()));
  }

  // Datasets: random non-empty dimension subsets.
  std::vector<std::vector<std::string>> schema_of(num_datasets);
  for (std::size_t ds = 0; ds < num_datasets; ++ds) {
    std::vector<std::string> schema;
    for (std::size_t d = 0; d < num_dims; ++d) {
      if (rng.Chance(0.7)) schema.push_back(dim_iris[d]);
    }
    if (schema.empty()) schema.push_back(dim_iris[0]);
    schema_of[ds] = schema;
    Check(b.AddDataset("rand:D" + std::to_string(ds), schema,
                       {measures[ds], measures[num_datasets]}));
  }

  // Observations: values at random codes (any level); duplicate keys within
  // a dataset are fine for relationship-engine property tests (the engines
  // never assume IC-12), so no dedup here.
  for (std::size_t i = 0; i < num_obs; ++i) {
    const std::size_t ds = rng.Uniform(num_datasets);
    std::vector<std::pair<std::string, std::string>> values;
    for (const std::string& dim : schema_of[ds]) {
      // Find the dimension index.
      std::size_t d = 0;
      while (dim_iris[d] != dim) ++d;
      // Occasionally omit the value (exercises root padding).
      if (rng.Chance(0.15)) continue;
      const auto& codes = codes_of_dim[d];
      values.emplace_back(dim, codes[rng.Uniform(codes.size())]);
    }
    Check(b.AddObservation(
        "rand:D" + std::to_string(ds), "rand:o" + std::to_string(i), values,
        {{measures[ds], rng.NextDouble()},
         {measures[num_datasets], rng.NextDouble()}}));
  }
  auto corpus = std::move(b).Build();
  assert(corpus.ok());
  return std::move(corpus).value();
}

}  // namespace testutil
}  // namespace rdfcube
