// Shared fixtures: the paper's running example (Figures 1-2) and small
// random corpora for property tests.

#ifndef RDFCUBE_TESTS_TEST_CORPUS_H_
#define RDFCUBE_TESTS_TEST_CORPUS_H_

#include <cstdint>
#include <string>

#include "qb/corpus.h"
#include "util/random.h"

namespace rdfcube {
namespace testutil {

// Dimension / measure IRIs of the running example.
inline constexpr char kRefArea[] = "ex:refArea";
inline constexpr char kRefPeriod[] = "ex:refPeriod";
inline constexpr char kSex[] = "ex:sex";
inline constexpr char kPopulation[] = "ex:population";
inline constexpr char kUnemployment[] = "ex:unemployment";
inline constexpr char kPoverty[] = "ex:poverty";

/// Builds the motivating example of the paper (Figures 1-2):
///
///   refArea:   World -> {Europe -> {Greece -> {Athens, Ioannina},
///              Italy -> {Rome}}, America -> {US -> {TX -> {Austin}}}}
///   refPeriod: AllTime -> {2001, 2011 -> {Jan11, Feb11}}
///   sex:       Total -> {Female, Male}
///
///   D1 (refArea, refPeriod, sex; population):      o11, o12, o13
///   D2 (refArea, refPeriod; unemployment+poverty): o21, o22
///   D3 (refArea, refPeriod; unemployment):         o31..o35
///
/// Observation ids (in insertion order): o11=0, o12=1, o13=2, o21=3, o22=4,
/// o31=5, o32=6, o33=7, o34=8, o35=9.
qb::Corpus MakeRunningExample();

/// Observation ids of the running example, for readable assertions.
enum RunningExampleIds : uint32_t {
  kO11 = 0,
  kO12 = 1,
  kO13 = 2,
  kO21 = 3,
  kO22 = 4,
  kO31 = 5,
  kO32 = 6,
  kO33 = 7,
  kO34 = 8,
  kO35 = 9,
};

/// Builds a randomized corpus for property tests: `num_dims` dimensions with
/// random trees (fanout 2-4, depth <= 3), `num_datasets` datasets over random
/// schema subsets with overlapping measures, `num_obs` observations with
/// values at random levels. Deterministic in `seed`.
qb::Corpus MakeRandomCorpus(uint64_t seed, std::size_t num_obs = 60,
                            std::size_t num_dims = 3,
                            std::size_t num_datasets = 3);

}  // namespace testutil
}  // namespace rdfcube

#endif  // RDFCUBE_TESTS_TEST_CORPUS_H_
