// Negative proof for the thread-safety gate: this TU writes a
// RDFCUBE_GUARDED_BY member without holding its mutex. Under
// -DRDFCUBE_THREAD_SAFETY=ON (clang, -Wthread-safety -Werror) it MUST fail
// to compile — tests/CMakeLists.txt try_compiles it and aborts the
// configure if it builds, because that would mean the annotations have
// silently stopped analyzing anything (e.g. the macros expanded to no-ops
// under a misdetected compiler). It is never part of any build target.

#include "base/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // BAD: mu_ not held; the analysis must reject this.
  }

 private:
  rdfcube::Mutex mu_;
  int balance_ RDFCUBE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit(1);
  return 0;
}
