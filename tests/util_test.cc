// Unit tests for src/util: Status/Result, BitVector, strings, CSV, Rng,
// ThreadPool, Stopwatch/Deadline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <set>
#include <thread>

#include "util/bitvector.h"
#include "util/csv.h"
#include "util/random.h"
#include "base/result.h"
#include "base/status.h"
#include "base/stopwatch.h"
#include "base/thread_annotations.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace rdfcube {
namespace {

// --- Status / Result ---------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_FALSE(st.IsParseError());
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyingSharesRepresentation) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_TRUE(b.IsInternal());
  EXPECT_EQ(b.message(), "boom");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  RDFCUBE_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOr(-1), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

// --- BitVector ----------------------------------------------------------------

TEST(BitVectorTest, SetTestReset) {
  BitVector v(130);
  EXPECT_EQ(v.size(), 130u);
  EXPECT_FALSE(v.Test(0));
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Reset(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVectorTest, CoversBasics) {
  BitVector a(70), b(70);
  a.Set(3);
  a.Set(65);
  b.Set(3);
  EXPECT_TRUE(a.Covers(b));
  EXPECT_FALSE(b.Covers(a));
  EXPECT_TRUE(a.Covers(a));
  b.Set(10);
  EXPECT_FALSE(a.Covers(b));
}

TEST(BitVectorTest, CoversRangeIsolatesColumns) {
  BitVector a(128), b(128);
  a.Set(5);
  b.Set(5);
  b.Set(100);  // outside the checked range
  EXPECT_TRUE(a.CoversRange(b, 0, 64));
  EXPECT_FALSE(a.CoversRange(b, 64, 128));
  EXPECT_FALSE(a.Covers(b));
}

TEST(BitVectorTest, CoversRangeWordBoundaries) {
  BitVector a(192), b(192);
  b.Set(63);
  b.Set(64);
  b.Set(127);
  EXPECT_FALSE(a.CoversRange(b, 63, 65));
  a.Set(63);
  a.Set(64);
  EXPECT_TRUE(a.CoversRange(b, 63, 65));
  EXPECT_FALSE(a.CoversRange(b, 63, 128));
  a.Set(127);
  EXPECT_TRUE(a.CoversRange(b, 0, 192));
}

TEST(BitVectorTest, EqualsRange) {
  BitVector a(100), b(100);
  a.Set(10);
  b.Set(10);
  a.Set(90);
  EXPECT_TRUE(a.EqualsRange(b, 0, 64));
  EXPECT_FALSE(a.EqualsRange(b, 64, 100));
}

TEST(BitVectorTest, CountRange) {
  BitVector v(256);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(200);
  EXPECT_EQ(v.CountRange(0, 64), 2u);
  EXPECT_EQ(v.CountRange(64, 65), 1u);
  EXPECT_EQ(v.CountRange(65, 200), 0u);
  EXPECT_EQ(v.CountRange(0, 256), 4u);
  EXPECT_EQ(v.CountRange(10, 10), 0u);
}

TEST(BitVectorTest, JaccardAndCounts) {
  BitVector a(64), b(64);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_EQ(a.IntersectCount(b), 1u);
  EXPECT_EQ(a.UnionCount(b), 3u);
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 1.0 / 3.0);
  BitVector e1(64), e2(64);
  EXPECT_DOUBLE_EQ(e1.Jaccard(e2), 1.0);  // both empty
}

TEST(BitVectorTest, ToStringRendering) {
  BitVector v(4);
  v.Set(1);
  v.Set(3);
  EXPECT_EQ(v.ToString(), "0101");
}

// Property sweep: CoversRange agrees with a naive per-bit check on random
// vectors over varied range boundaries.
class BitVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorPropertyTest, CoversRangeMatchesNaive) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.Uniform(300);
  BitVector a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Chance(0.4)) a.Set(i);
    if (rng.Chance(0.4)) b.Set(i);
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t lo = rng.Uniform(n + 1);
    std::size_t hi = rng.Uniform(n + 1);
    if (lo > hi) std::swap(lo, hi);
    bool naive = true;
    for (std::size_t i = lo; i < hi; ++i) {
      if (b.Test(i) && !a.Test(i)) {
        naive = false;
        break;
      }
    }
    EXPECT_EQ(a.CoversRange(b, lo, hi), naive)
        << "n=" << n << " lo=" << lo << " hi=" << hi;
  }
}

TEST_P(BitVectorPropertyTest, CountRangeMatchesNaive) {
  Rng rng(GetParam() * 31 + 7);
  const std::size_t n = 1 + rng.Uniform(300);
  BitVector a(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) a.Set(i);
  }
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t lo = rng.Uniform(n + 1);
    std::size_t hi = rng.Uniform(n + 1);
    if (lo > hi) std::swap(lo, hi);
    std::size_t naive = 0;
    for (std::size_t i = lo; i < hi; ++i) naive += a.Test(i) ? 1 : 0;
    EXPECT_EQ(a.CountRange(lo, hi), naive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- Strings -------------------------------------------------------------------

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("abc", ',')[0], "abc");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n a b \r"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(EndsWith("file.ttl", ".ttl"));
  EXPECT_FALSE(EndsWith("x", "xyz"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, IriLocalName) {
  EXPECT_EQ(IriLocalName("http://ex.org/path#frag"), "frag");
  EXPECT_EQ(IriLocalName("http://ex.org/a/b"), "b");
  EXPECT_EQ(IriLocalName("plain"), "plain");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AtHeNs-2011"), "athens-2011");
}

// --- CSV -----------------------------------------------------------------------

TEST(CsvTest, ParsesSimpleTable) {
  auto t = ParseCsv("a,b\n1,2\n3,4\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(t->rows.size(), 2u);
  EXPECT_EQ(t->rows[1][1], "4");
}

TEST(CsvTest, HandlesQuotedFields) {
  auto t = ParseCsv("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], "x,y");
  EXPECT_EQ(t->rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto t = ParseCsv("a,b\n1,2,3\n");
  ASSERT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsParseError());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto t = ParseCsv("a\n\"unterminated\n");
  ASSERT_FALSE(t.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, CrLfLineEndings) {
  auto t = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows[0][0], "1");
}

TEST(CsvTest, RoundTrip) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"x", "a,b"}, {"y", "with \"quotes\""}};
  auto parsed = ParseCsv(WriteCsv(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
}

TEST(RngTest, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleClampsOversizedRequest) {
  Rng rng(5);
  EXPECT_EQ(rng.SampleWithoutReplacement(10, 50).size(), 10u);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(7);
  std::size_t low = 0, total = 10000;
  for (std::size_t i = 0; i < total; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  // Top-10 of 100 should take far more than its 10% uniform share.
  EXPECT_GT(low, total / 4);
}

// --- ThreadPool -------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(&pool, hits.size(),
              [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

// --- Stopwatch / Deadline ------------------------------------------------------

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch w;
  const double t1 = w.ElapsedSeconds();
  const double t2 = w.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ZeroExpiresImmediately) {
  Deadline d(0.0);
  // Elapsed > 0 after any work.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, UnlimitedReportsInfinityNotZero) {
  // The sentinel that distinguishes "no limit" from "already expired":
  // RemainingSeconds() of a limitless deadline is +inf, never 0.
  Deadline unlimited;
  EXPECT_FALSE(unlimited.HasLimit());
  EXPECT_TRUE(std::isinf(unlimited.RemainingSeconds()));
  EXPECT_GT(unlimited.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, ExpiredClampsRemainingAtZero) {
  Deadline d(0.0);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  EXPECT_TRUE(d.HasLimit());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, RemainingNeverExceedsLimit) {
  Deadline d(1000.0);
  EXPECT_TRUE(d.HasLimit());
  EXPECT_LE(d.RemainingSeconds(), 1000.0);
  EXPECT_GT(d.RemainingSeconds(), 0.0);
  EXPECT_FALSE(d.Expired());
}

// --- MutexLock::WaitWithDeadline ----------------------------------------------

TEST(WaitWithDeadlineTest, TimesOutWhenNeverNotified) {
  Mutex mu;
  std::condition_variable cv;
  MutexLock lock(&mu);
  const Deadline deadline(0.02);
  bool notified = true;
  while (notified && !deadline.Expired()) {
    notified = lock.WaitWithDeadline(cv, deadline);
  }
  EXPECT_FALSE(notified);  // the last wait reported a timeout
  EXPECT_TRUE(deadline.Expired());
}

TEST(WaitWithDeadlineTest, AlreadyExpiredDeadlineReturnsPromptly) {
  Mutex mu;
  std::condition_variable cv;
  MutexLock lock(&mu);
  const Stopwatch watch;
  EXPECT_FALSE(lock.WaitWithDeadline(cv, Deadline(0.0)));
  // A zero-remaining deadline must not turn into an unbounded sleep.
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(WaitWithDeadlineTest, NotificationArrivesBeforeDeadline) {
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;  // guarded by mu (local test state; annotations need
                       // members, so the predicate loop stands in for them)
  std::thread notifier([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(&mu);
    const Deadline deadline(30.0);
    while (!ready) {
      if (!lock.WaitWithDeadline(cv, deadline)) break;
    }
    EXPECT_TRUE(ready);  // decided on the predicate, not the return value
  }
  notifier.join();
}

TEST(WaitWithDeadlineTest, UnlimitedDeadlineDegradesToPlainWait) {
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::thread notifier([&] {
    {
      MutexLock lock(&mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    MutexLock lock(&mu);
    while (!ready) {
      // Must not overflow wait_for with the +inf remaining-seconds sentinel.
      if (!lock.WaitWithDeadline(cv, Deadline())) break;
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

}  // namespace
}  // namespace rdfcube
