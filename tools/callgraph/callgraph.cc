#include "tools/callgraph/callgraph.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <tuple>
#include <utility>

#include "obs/json_writer.h"

namespace rdfcube {
namespace callgraph {

namespace {

// Per-corpus-file transitive include closure, used to filter call-edge
// candidates by TU visibility: a call site can only link to a definition
// whose file (or whose header, for out-of-line definitions) the calling TU
// transitively includes. This is what keeps shared method names from
// creating impossible cross-layer edges (core code can never call
// server::Client::Containers — the server headers are not visible there).
class VisibilityMap {
 public:
  explicit VisibilityMap(const std::vector<lint::SourceFile>& corpus) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      index_.emplace(corpus[i].path, static_cast<int>(i));
    }
    static const std::regex kInclude(R"re(^\s*#\s*include\s+"([^"]+)")re");
    std::vector<std::vector<int>> adj(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      for (const std::string& line : corpus[i].code) {
        std::smatch m;
        if (!std::regex_search(line, m, kInclude)) continue;
        const int target = Resolve(m[1]);
        if (target >= 0) adj[i].push_back(target);
      }
    }
    closure_.resize(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      std::vector<bool>& seen = closure_[i];
      seen.assign(corpus.size(), false);
      std::vector<int> stack{static_cast<int>(i)};
      seen[i] = true;
      while (!stack.empty()) {
        const int f = stack.back();
        stack.pop_back();
        for (const int t : adj[static_cast<std::size_t>(f)]) {
          if (!seen[static_cast<std::size_t>(t)]) {
            seen[static_cast<std::size_t>(t)] = true;
            stack.push_back(t);
          }
        }
      }
    }
  }

  /// Index of `path` in the corpus, or -1.
  int IndexOf(const std::string& path) const {
    const auto it = index_.find(path);
    return it == index_.end() ? -1 : it->second;
  }

  /// True when a function defined in `callee_file` is visible to a call in
  /// `caller_file`: same file, transitively included, or — for out-of-line
  /// definitions — the callee's sibling header is transitively included.
  bool Visible(int caller_file, const std::string& callee_path) const {
    const int callee = IndexOf(callee_path);
    if (caller_file < 0 || callee < 0) return false;
    const std::vector<bool>& seen =
        closure_[static_cast<std::size_t>(caller_file)];
    if (seen[static_cast<std::size_t>(callee)]) return true;
    const std::size_t dot = callee_path.rfind('.');
    if (dot == std::string::npos) return false;
    const int header = IndexOf(callee_path.substr(0, dot) + ".h");
    return header >= 0 && seen[static_cast<std::size_t>(header)];
  }

 private:
  // Resolves a quoted include against the corpus: module headers are
  // written src-relative ("util/bitvector.h"), tools headers root-relative.
  int Resolve(const std::string& written) const {
    const int as_src = IndexOf("src/" + written);
    if (as_src >= 0) return as_src;
    return IndexOf(written);
  }

  std::map<std::string, int> index_;
  std::vector<std::vector<bool>> closure_;
};

// True when `qualified` equals `written` or ends with "::written" — the
// match rule for qualified call sites (Foo::Bar(...) can only link to a
// definition whose qualified name has that suffix).
bool QualifiedSuffixMatch(const std::string& qualified,
                          const std::string& written) {
  if (qualified == written) return true;
  if (qualified.size() <= written.size() + 2) return false;
  const std::size_t at = qualified.size() - written.size();
  return qualified.compare(at, std::string::npos, written) == 0 &&
         qualified.compare(at - 2, 2, "::") == 0;
}

std::string Location(const FunctionInfo& fn) {
  return fn.file + ":" + std::to_string(fn.line);
}

// Which Reach member of a summary carries `kind`.
const Reach* ReachFor(const FunctionSummary& s, FactKind kind) {
  switch (kind) {
    case FactKind::kAlloc:
    case FactKind::kGrowth:
      return &s.alloc;
    case FactKind::kLock:
      return &s.lock;
    case FactKind::kThrow:
      return &s.thrown;
    case FactKind::kBlocking:
      return &s.blocking;
    case FactKind::kDispatch:
      return &s.dispatch;
    case FactKind::kSizedSink:
    case FactKind::kSizeArith:
      return nullptr;  // sink facts are consumed by the taint gate
  }
  return nullptr;
}

// Fixpoint propagation of one fact kind over the reverse call graph.
// `reach` arrives seeded with own-fact sources; cold callees absorb.
void Propagate(const CallGraph& graph, std::vector<Reach>* reach) {
  std::vector<int> worklist;
  for (std::size_t i = 0; i < reach->size(); ++i) {
    if ((*reach)[i].reaches) worklist.push_back(static_cast<int>(i));
  }
  // Reverse adjacency: callee -> incoming edges.
  std::vector<std::vector<const Edge*>> in(graph.functions.size());
  for (const Edge& e : graph.edges) {
    in[static_cast<std::size_t>(e.callee)].push_back(&e);
  }
  while (!worklist.empty()) {
    const int f = worklist.back();
    worklist.pop_back();
    if (graph.functions[static_cast<std::size_t>(f)].cold) {
      continue;  // deliberate slow path: facts stop here
    }
    for (const Edge* e : in[static_cast<std::size_t>(f)]) {
      Reach& r = (*reach)[static_cast<std::size_t>(e->caller)];
      if (r.reaches) continue;
      r.reaches = true;
      r.source = (*reach)[static_cast<std::size_t>(f)].source;
      r.via = f;
      r.via_line = e->line;
      worklist.push_back(e->caller);
    }
  }
}

// Fixpoint FORWARD propagation of taint (caller -> callee): a decoder's
// helpers all see untrusted values. Seeded with RDFCUBE_TAINT_SOURCE
// definitions; RDFCUBE_TAINT_BARRIER callees never become tainted (the
// validated-boundary assertion), mirroring how RDFCUBE_COLD absorbs facts
// in the reverse direction.
void PropagateTaint(const CallGraph& graph, std::vector<Taint>* taint) {
  std::vector<int> worklist;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    if (fn.taint_source && !fn.taint_barrier) {
      (*taint)[i].tainted = true;
      (*taint)[i].source = static_cast<int>(i);
      (*taint)[i].via = -1;
      worklist.push_back(static_cast<int>(i));
    }
  }
  // Forward adjacency: caller -> outgoing edges.
  std::vector<std::vector<const Edge*>> adj(graph.functions.size());
  for (const Edge& e : graph.edges) {
    adj[static_cast<std::size_t>(e.caller)].push_back(&e);
  }
  while (!worklist.empty()) {
    const int f = worklist.back();
    worklist.pop_back();
    for (const Edge* e : adj[static_cast<std::size_t>(f)]) {
      if (graph.functions[static_cast<std::size_t>(e->callee)].taint_barrier) {
        continue;  // validated boundary: taint stops here
      }
      Taint& t = (*taint)[static_cast<std::size_t>(e->callee)];
      if (t.tainted) continue;
      t.tainted = true;
      t.source = (*taint)[static_cast<std::size_t>(f)].source;
      t.via = f;
      t.via_line = e->line;
      worklist.push_back(e->callee);
    }
  }
}

// Iterative Tarjan SCC over an arbitrary adjacency list. Returns the
// component id of every node; components with >1 member or a self-loop are
// cycles. Shared by the direct-call recursion detector and the lock-order
// graph (DESIGN.md §5i).
std::vector<int> Sccs(const std::vector<std::vector<int>>& adj,
                      int* num_sccs) {
  const std::size_t n = adj.size();
  std::vector<int> index(n, -1), low(n, 0), comp(n, -1);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  int next_index = 0, next_comp = 0;

  struct Frame {
    int v;
    std::size_t child;
  };
  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames{{static_cast<int>(root), 0}};
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const std::size_t v = static_cast<std::size_t>(fr.v);
      if (fr.child == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(fr.v);
        on_stack[v] = true;
      }
      bool descended = false;
      while (fr.child < adj[v].size()) {
        const int w = adj[v][fr.child++];
        const std::size_t wu = static_cast<std::size_t>(w);
        if (index[wu] == -1) {
          frames.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[wu]) low[v] = std::min(low[v], index[wu]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        int w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          comp[static_cast<std::size_t>(w)] = next_comp;
        } while (w != fr.v);
        ++next_comp;
      }
      const int done = fr.v;
      frames.pop_back();
      if (!frames.empty()) {
        const std::size_t p = static_cast<std::size_t>(frames.back().v);
        low[p] = std::min(low[p], low[static_cast<std::size_t>(done)]);
      }
    }
  }
  *num_sccs = next_comp;
  return comp;
}

// Tarjan over the direct-call subgraph (recursion detection).
std::vector<int> DirectSccs(const CallGraph& graph, int* num_sccs) {
  std::vector<std::vector<int>> adj(graph.functions.size());
  for (const Edge& e : graph.edges) {
    if (e.direct) adj[static_cast<std::size_t>(e.caller)].push_back(e.callee);
  }
  return Sccs(adj, num_sccs);
}

// Resolves a raw lock expression from the extractor against the corpus
// Mutex members, to a stable lock id (DESIGN.md §5i):
//   1. a function-local `Mutex x;` shadows everything: "<fn>::x";
//   2. a receiver expression ("s->a_", "trace->mu") resolves by its final
//      member token when exactly one corpus member has that name;
//   3. a plain identifier resolves against the enclosing class of `fn`,
//      then against a corpus-unique member name;
//   4. otherwise "<fn>::<expr>" — a private identity that can never create
//      a false cross-function cycle (but may miss a real shared one; the
//      TSan deadlock twin covers the dynamic side).
std::string ResolveLockExpr(const FunctionInfo& fn, const std::string& expr,
                            const std::vector<MutexMember>& mutexes) {
  if (expr.empty()) return expr;
  std::size_t tok_at = 0;
  for (std::size_t i = 0; i + 1 < expr.size(); ++i) {
    if (expr[i] == '-' && expr[i + 1] == '>') tok_at = i + 2;
    if (expr[i] == '.') tok_at = i + 1;
  }
  const std::string tok = expr.substr(tok_at);
  const bool has_receiver = tok_at != 0;

  const auto unique_member = [&mutexes](const std::string& name)
      -> const MutexMember* {
    const MutexMember* found = nullptr;
    for (const MutexMember& m : mutexes) {
      if (m.member != name) continue;
      if (found != nullptr) return nullptr;  // ambiguous
      found = &m;
    }
    return found;
  };

  if (!has_receiver) {
    for (const std::string& local : fn.local_mutexes) {
      if (local == tok) return fn.qualified + "::" + tok;
    }
    const std::size_t sep = fn.qualified.rfind("::");
    if (sep != std::string::npos) {
      const std::string member_id = fn.qualified.substr(0, sep) + "::" + tok;
      for (const MutexMember& m : mutexes) {
        if (m.qualified == member_id) return member_id;
      }
    }
  }
  if (const MutexMember* m = unique_member(tok)) return m->qualified;
  return fn.qualified + "::" + expr;
}

}  // namespace

std::vector<int> CallGraph::FindBySuffix(const std::string& suffix) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (QualifiedSuffixMatch(functions[i].qualified, suffix)) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

CallGraph BuildCallGraph(const std::vector<lint::SourceFile>& corpus) {
  CallGraph graph;
  for (const lint::SourceFile& file : corpus) {
    std::vector<FunctionInfo> fns = ExtractFunctions(file, &graph.mutexes);
    for (FunctionInfo& fn : fns) graph.functions.push_back(std::move(fn));
    for (std::string& name : VirtualMethodNames(file)) {
      graph.virtual_names.insert(std::move(name));
    }
  }

  // Resolve every raw lock expression (held sets, acquisition sites) to a
  // corpus-wide lock id now that all Mutex members are known.
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    FunctionInfo& fn = graph.functions[i];
    const auto resolve_all = [&fn, &graph](std::vector<std::string>* held) {
      for (std::string& expr : *held) {
        expr = ResolveLockExpr(fn, expr, graph.mutexes);
      }
      std::sort(held->begin(), held->end());
      held->erase(std::unique(held->begin(), held->end()), held->end());
    };
    for (BodyFact& fact : fn.facts) resolve_all(&fact.held);
    for (CallSite& call : fn.calls) resolve_all(&call.held);
    for (const LockAcquisition& acq : fn.lock_acquisitions) {
      LockAcquire resolved;
      resolved.fn = static_cast<int>(i);
      resolved.lock = ResolveLockExpr(fn, acq.expr, graph.mutexes);
      resolved.line = acq.line;
      resolved.held = acq.held;
      resolve_all(&resolved.held);
      graph.acquisitions.push_back(std::move(resolved));
    }
  }

  const VisibilityMap visibility(corpus);

  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    by_name[graph.functions[i].name].push_back(static_cast<int>(i));
  }

  // Deduplication key includes the held signature: a locked and an unlocked
  // call to the same callee must stay separate edges, or the lock gate
  // would charge (or forgive) the wrong site.
  std::map<std::tuple<int, int, std::string>, std::size_t> edge_index;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const int caller_file = visibility.IndexOf(graph.functions[i].file);
    for (const CallSite& call : graph.functions[i].calls) {
      const std::size_t sep = call.name.rfind(':');
      const std::string last =
          sep == std::string::npos ? call.name : call.name.substr(sep + 1);
      // A member call through a virtual name is dynamic dispatch: its static
      // target is unknown, so linking it to an arbitrary override would
      // charge the caller with facts from implementations it may never use
      // (e.g. a masking kernel emitting through RelationshipSink must not
      // inherit CollectingSink's vector growth). Such calls surface as
      // calls_virtual in the summary instead of as edges.
      if (call.member && graph.virtual_names.count(last) != 0) continue;
      const auto it = by_name.find(last);
      if (it == by_name.end()) continue;
      std::string held_sig;
      for (const std::string& h : call.held) {
        held_sig += h;
        held_sig += ',';
      }
      for (const int callee : it->second) {
        const FunctionInfo& target =
            graph.functions[static_cast<std::size_t>(callee)];
        if (target.file != graph.functions[i].file &&
            !visibility.Visible(caller_file, target.file)) {
          continue;
        }
        if (sep != std::string::npos &&
            !QualifiedSuffixMatch(target.qualified, call.name)) {
          continue;
        }
        const bool direct = !call.member;
        const auto key =
            std::make_tuple(static_cast<int>(i), callee, held_sig);
        const auto found = edge_index.find(key);
        if (found != edge_index.end()) {
          graph.edges[found->second].direct |= direct;
          continue;
        }
        edge_index.emplace(key, graph.edges.size());
        graph.edges.push_back(
            {static_cast<int>(i), callee, call.line, direct, call.held});
      }
    }
  }
  return graph;
}

std::vector<FunctionSummary> ComputeSummaries(const CallGraph& graph) {
  const std::size_t n = graph.functions.size();
  std::vector<FunctionSummary> out(n);

  std::vector<Reach> alloc(n), lock(n), thrown(n), blocking(n), dispatch(n);
  const auto seed = [](Reach* r, int i, std::size_t line,
                       const std::string& detail) {
    if (r->reaches) return;
    r->reaches = true;
    r->source = i;
    r->via = -1;
    r->fact_line = line;
    r->fact_detail = detail;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = graph.functions[i];
    if (fn.blocking) {
      seed(&blocking[i], static_cast<int>(i), fn.line, "RDFCUBE_BLOCKING");
    }
    for (const BodyFact& fact : fn.facts) {
      Reach* r = nullptr;
      switch (fact.kind) {
        case FactKind::kAlloc:
          r = &alloc[i];
          break;
        case FactKind::kGrowth:
          if (!fn.has_reserve) r = &alloc[i];
          break;
        case FactKind::kLock:
          r = &lock[i];
          break;
        case FactKind::kThrow:
          r = &thrown[i];
          break;
        case FactKind::kBlocking:
          r = &blocking[i];
          break;
        case FactKind::kDispatch:
          out[i].calls_virtual = true;
          r = &dispatch[i];
          break;
        case FactKind::kSizedSink:
        case FactKind::kSizeArith:
          break;  // not Reach-propagated; EvaluateTaintGate reads them raw
      }
      if (r != nullptr) {
        seed(r, static_cast<int>(i), fact.line, fact.detail);
      }
    }
    for (const CallSite& call : fn.calls) {
      const std::size_t sep = call.name.rfind(':');
      const std::string last =
          sep == std::string::npos ? call.name : call.name.substr(sep + 1);
      if (call.member && graph.virtual_names.count(last) != 0) {
        out[i].calls_virtual = true;
        // Virtual dispatch has no static target; it seeds the dispatch
        // Reach here instead of creating an edge (callback-under-lock).
        seed(&dispatch[i], static_cast<int>(i), call.line, last);
      } else if (graph.virtual_names.count(last) != 0) {
        out[i].calls_virtual = true;
      }
    }
  }
  Propagate(graph, &alloc);
  Propagate(graph, &lock);
  Propagate(graph, &thrown);
  Propagate(graph, &blocking);
  Propagate(graph, &dispatch);

  std::vector<Taint> taint(n);
  PropagateTaint(graph, &taint);

  int num_sccs = 0;
  const std::vector<int> comp = DirectSccs(graph, &num_sccs);
  std::vector<std::vector<int>> members(static_cast<std::size_t>(num_sccs));
  for (std::size_t i = 0; i < n; ++i) {
    members[static_cast<std::size_t>(comp[i])].push_back(static_cast<int>(i));
  }
  std::vector<bool> self_loop(n, false);
  for (const Edge& e : graph.edges) {
    if (e.direct && e.caller == e.callee) {
      self_loop[static_cast<std::size_t>(e.caller)] = true;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i].alloc = alloc[i];
    out[i].lock = lock[i];
    out[i].thrown = thrown[i];
    out[i].blocking = blocking[i];
    out[i].dispatch = dispatch[i];
    out[i].taint = taint[i];
    const std::vector<int>& scc = members[static_cast<std::size_t>(comp[i])];
    if (scc.size() > 1 || self_loop[i]) {
      out[i].recursive = true;
      out[i].cycle = scc;
      std::sort(out[i].cycle.begin(), out[i].cycle.end());
    }
  }
  return out;
}

std::string WitnessChain(const CallGraph& graph,
                         const std::vector<FunctionSummary>& summaries,
                         int fn, FactKind kind) {
  const Reach* r = ReachFor(summaries[static_cast<std::size_t>(fn)], kind);
  if (r == nullptr || !r->reaches) return "";
  std::string out;
  int cur = fn;
  // Bounded walk: via-chains are acyclic by construction (each function is
  // assigned a via exactly once, pointing strictly towards the source), but
  // cap it anyway so a bug cannot loop forever.
  for (std::size_t guard = 0; guard <= graph.functions.size(); ++guard) {
    const FunctionInfo& info = graph.functions[static_cast<std::size_t>(cur)];
    out += info.qualified + " (" + Location(info) + ")";
    const Reach* step =
        ReachFor(summaries[static_cast<std::size_t>(cur)], kind);
    if (step == nullptr) break;
    if (step->via < 0) {
      const Reach* src =
          ReachFor(summaries[static_cast<std::size_t>(step->source)], kind);
      out += " -> " + std::string(FactKindName(kind)) + " '" +
             src->fact_detail + "' at " + info.file + ":" +
             std::to_string(src->fact_line);
      break;
    }
    out += " -> ";
    cur = step->via;
  }
  return out;
}

std::string GraphToDot(const CallGraph& graph,
                       const std::vector<FunctionSummary>& summaries) {
  std::string out = "digraph rdfcube_callgraph {\n  rankdir=LR;\n"
                    "  node [shape=box, fontsize=9];\n";
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    out += "  f" + std::to_string(i) + " [label=";
    obs::AppendJsonString(&out, fn.qualified + "\n" + Location(fn));
    if (fn.hot) out += ", peripheries=2, color=red";
    if (fn.cold) out += ", style=dashed";
    if (summaries[i].alloc.reaches) out += ", fillcolor=lightyellow, style=filled";
    out += "];\n";
  }
  for (const Edge& e : graph.edges) {
    out += "  f" + std::to_string(e.caller) + " -> f" +
           std::to_string(e.callee);
    if (!e.direct) out += " [style=dotted]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::string GraphToJson(const CallGraph& graph,
                        const std::vector<FunctionSummary>& summaries) {
  std::string out = "{\n  \"functions\": [\n";
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    const FunctionSummary& s = summaries[i];
    out += "    {\"id\": " + std::to_string(i) + ", \"qualified\": ";
    obs::AppendJsonString(&out, fn.qualified);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, fn.file);
    out += ", \"line\": " + std::to_string(fn.line);
    out += std::string(", \"hot\": ") + (fn.hot ? "true" : "false");
    out += std::string(", \"cold\": ") + (fn.cold ? "true" : "false");
    out += std::string(", \"taint_source\": ") +
           (fn.taint_source ? "true" : "false");
    out += std::string(", \"taint_barrier\": ") +
           (fn.taint_barrier ? "true" : "false");
    out += std::string(", \"blocking\": ") + (fn.blocking ? "true" : "false");
    out += ", \"facts\": [";
    for (std::size_t j = 0; j < fn.facts.size(); ++j) {
      const BodyFact& fact = fn.facts[j];
      out += std::string(j == 0 ? "" : ", ") + "{\"kind\": \"" +
             FactKindName(fact.kind) +
             "\", \"line\": " + std::to_string(fact.line) + ", \"detail\": ";
      obs::AppendJsonString(&out, fact.detail);
      out += "}";
    }
    out += "], \"summary\": {\"reaches_alloc\": ";
    out += s.alloc.reaches ? "true" : "false";
    out += ", \"reaches_lock\": ";
    out += s.lock.reaches ? "true" : "false";
    out += ", \"reaches_throw\": ";
    out += s.thrown.reaches ? "true" : "false";
    out += ", \"reaches_blocking\": ";
    out += s.blocking.reaches ? "true" : "false";
    out += ", \"reaches_dispatch\": ";
    out += s.dispatch.reaches ? "true" : "false";
    out += ", \"tainted\": ";
    out += s.taint.tainted ? "true" : "false";
    out += ", \"recursive\": ";
    out += s.recursive ? "true" : "false";
    out += ", \"calls_virtual\": ";
    out += s.calls_virtual ? "true" : "false";
    out += "}}";
    out += i + 1 == graph.functions.size() ? "\n" : ",\n";
  }
  out += "  ],\n  \"edges\": [\n";
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const Edge& e = graph.edges[i];
    out += "    {\"caller\": " + std::to_string(e.caller) +
           ", \"callee\": " + std::to_string(e.callee) +
           ", \"line\": " + std::to_string(e.line) + ", \"direct\": " +
           (e.direct ? "true" : "false");
    if (!e.held.empty()) {
      out += ", \"held\": [";
      for (std::size_t j = 0; j < e.held.size(); ++j) {
        if (j != 0) out += ", ";
        obs::AppendJsonString(&out, e.held[j]);
      }
      out += "]";
    }
    out += "}";
    out += i + 1 == graph.edges.size() ? "\n" : ",\n";
  }
  out += "  ],\n  \"num_functions\": " +
         std::to_string(graph.functions.size()) +
         ",\n  \"num_edges\": " + std::to_string(graph.edges.size()) + "\n}\n";
  return out;
}

std::vector<HotPathViolation> EvaluateHotGate(
    const CallGraph& graph, const std::vector<FunctionSummary>& summaries) {
  std::vector<HotPathViolation> out;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    if (!graph.functions[i].hot) continue;
    if (summaries[i].alloc.reaches) {
      out.push_back({static_cast<int>(i), "hot-path-alloc",
                     WitnessChain(graph, summaries, static_cast<int>(i),
                                  FactKind::kAlloc)});
    }
    if (summaries[i].lock.reaches) {
      out.push_back({static_cast<int>(i), "hot-path-lock",
                     WitnessChain(graph, summaries, static_cast<int>(i),
                                  FactKind::kLock)});
    }
  }
  return out;
}

std::string HotPathReportJson(const CallGraph& graph,
                              const std::vector<FunctionSummary>& summaries,
                              const std::vector<HotPathViolation>& violations) {
  std::string out = "{\n  \"hot_functions\": [\n";
  bool first = true;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    if (!fn.hot) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"qualified\": ";
    obs::AppendJsonString(&out, fn.qualified);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, fn.file);
    out += ", \"line\": " + std::to_string(fn.line);
    bool clean = true;
    std::string viols;
    for (const HotPathViolation& v : violations) {
      if (v.fn != static_cast<int>(i)) continue;
      clean = false;
      if (!viols.empty()) viols += ", ";
      viols += "{\"kind\": \"" + v.kind + "\", \"witness\": ";
      obs::AppendJsonString(&viols, v.witness);
      viols += "}";
    }
    out += std::string(", \"clean\": ") + (clean ? "true" : "false");
    out += ", \"calls_virtual\": ";
    out += summaries[i].calls_virtual ? "true" : "false";
    out += ", \"violations\": [" + viols + "]}";
  }
  out += "\n  ],\n  \"cold_functions\": [";
  first = true;
  for (const FunctionInfo& fn : graph.functions) {
    if (!fn.cold) continue;
    if (!first) out += ", ";
    first = false;
    obs::AppendJsonString(&out, fn.qualified);
  }
  out += "],\n  \"violations_total\": " + std::to_string(violations.size()) +
         "\n}\n";
  return out;
}

std::string TaintWitnessChain(const CallGraph& graph,
                              const std::vector<FunctionSummary>& summaries,
                              int fn, std::size_t sink_line,
                              const std::string& sink_detail) {
  if (!summaries[static_cast<std::size_t>(fn)].taint.tainted) return "";
  // Collect the chain sink-end-first by following via (one step towards the
  // source), then print source-first: taint flows source -> ... -> fn.
  std::vector<int> chain;
  int cur = fn;
  for (std::size_t guard = 0; guard <= graph.functions.size(); ++guard) {
    chain.push_back(cur);
    const Taint& t = summaries[static_cast<std::size_t>(cur)].taint;
    if (t.via < 0) break;
    cur = t.via;
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const FunctionInfo& info = graph.functions[static_cast<std::size_t>(*it)];
    if (!out.empty()) out += " -> ";
    out += info.qualified + " (" + Location(info) + ")";
  }
  const FunctionInfo& last = graph.functions[static_cast<std::size_t>(fn)];
  out += " -> sized sink '" + sink_detail + "' at " + last.file + ":" +
         std::to_string(sink_line);
  return out;
}

std::vector<TaintViolation> EvaluateTaintGate(
    const CallGraph& graph, const std::vector<FunctionSummary>& summaries) {
  std::vector<TaintViolation> out;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    if (!summaries[i].taint.tainted) continue;
    for (const BodyFact& fact : fn.facts) {
      if (fact.kind == FactKind::kSizedSink && !fn.has_limit_guard) {
        out.push_back({static_cast<int>(i), "untrusted-size-sink", fact.line,
                       TaintWitnessChain(graph, summaries, static_cast<int>(i),
                                         fact.line, fact.detail)});
      }
      if (fact.kind == FactKind::kSizeArith && !fn.has_checked_math) {
        out.push_back({static_cast<int>(i), "unchecked-size-arith", fact.line,
                       TaintWitnessChain(graph, summaries, static_cast<int>(i),
                                         fact.line, fact.detail)});
      }
    }
  }
  // missing-limit-clamp: a declared source whose whole barrier-free forward
  // closure never compares against a limit — the decoder clamps nothing.
  std::vector<std::vector<int>> adj(graph.functions.size());
  for (const Edge& e : graph.edges) {
    adj[static_cast<std::size_t>(e.caller)].push_back(e.callee);
  }
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    if (!fn.taint_source || fn.taint_barrier) continue;
    std::vector<bool> seen(graph.functions.size(), false);
    std::vector<int> stack{static_cast<int>(i)};
    seen[i] = true;
    bool clamped = false;
    std::size_t closure = 0;
    while (!stack.empty() && !clamped) {
      const int f = stack.back();
      stack.pop_back();
      ++closure;
      if (graph.functions[static_cast<std::size_t>(f)].has_limit_guard) {
        clamped = true;
        break;
      }
      for (const int t : adj[static_cast<std::size_t>(f)]) {
        const std::size_t tu = static_cast<std::size_t>(t);
        if (seen[tu] || graph.functions[tu].taint_barrier) continue;
        seen[tu] = true;
        stack.push_back(t);
      }
    }
    if (!clamped) {
      out.push_back(
          {static_cast<int>(i), "missing-limit-clamp", fn.line,
           fn.qualified + " (" + Location(fn) +
               ") is RDFCUBE_TAINT_SOURCE but no function in its " +
               std::to_string(closure) +
               "-function barrier-free call closure compares against a "
               "limit"});
    }
  }
  return out;
}

std::string TaintReportJson(const CallGraph& graph,
                            const std::vector<FunctionSummary>& summaries,
                            const std::vector<TaintViolation>& violations) {
  std::string out = "{\n  \"sources\": [\n";
  bool first = true;
  for (const FunctionInfo& fn : graph.functions) {
    if (!fn.taint_source) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"qualified\": ";
    obs::AppendJsonString(&out, fn.qualified);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, fn.file);
    out += ", \"line\": " + std::to_string(fn.line) + "}";
  }
  out += "\n  ],\n  \"barriers\": [";
  first = true;
  for (const FunctionInfo& fn : graph.functions) {
    if (!fn.taint_barrier) continue;
    if (!first) out += ", ";
    first = false;
    obs::AppendJsonString(&out, fn.qualified);
  }
  out += "],\n  \"tainted_functions\": [\n";
  first = true;
  std::size_t tainted_total = 0;
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    if (!summaries[i].taint.tainted) continue;
    ++tainted_total;
    if (!first) out += ",\n";
    first = false;
    const FunctionInfo& fn = graph.functions[i];
    out += "    {\"qualified\": ";
    obs::AppendJsonString(&out, fn.qualified);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, fn.file);
    out += ", \"line\": " + std::to_string(fn.line);
    out += ", \"source\": ";
    obs::AppendJsonString(
        &out, graph.functions[static_cast<std::size_t>(summaries[i].taint.source)]
                  .qualified);
    out += "}";
  }
  out += "\n  ],\n  \"violations\": [\n";
  first = true;
  for (const TaintViolation& v : violations) {
    if (!first) out += ",\n";
    first = false;
    const FunctionInfo& fn = graph.functions[static_cast<std::size_t>(v.fn)];
    out += "    {\"kind\": \"" + v.kind + "\", \"qualified\": ";
    obs::AppendJsonString(&out, fn.qualified);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, fn.file);
    out += ", \"line\": " + std::to_string(v.line) + ", \"witness\": ";
    obs::AppendJsonString(&out, v.witness);
    out += "}";
  }
  out += "\n  ],\n  \"tainted_total\": " + std::to_string(tainted_total) +
         ",\n  \"violations_total\": " + std::to_string(violations.size()) +
         "\n}\n";
  return out;
}

namespace {

// Renders a held set as "[a, b]" for witness text.
std::string HeldText(const std::vector<std::string>& held) {
  std::string out = "[";
  for (std::size_t i = 0; i < held.size(); ++i) {
    if (i != 0) out += ", ";
    out += held[i];
  }
  out += "]";
  return out;
}

// Walks a raw per-lock Reach via-chain from `fn` towards its source and
// appends the acquisition tail: "A (f:1) -> B (g:2) -> acquires <L> at g:3".
std::string LockReachWitness(const CallGraph& graph,
                             const std::vector<Reach>& reach, int fn) {
  std::string out;
  int cur = fn;
  for (std::size_t guard = 0; guard <= graph.functions.size(); ++guard) {
    const FunctionInfo& info = graph.functions[static_cast<std::size_t>(cur)];
    out += info.qualified + " (" + Location(info) + ")";
    const Reach& step = reach[static_cast<std::size_t>(cur)];
    if (step.via < 0) {
      const Reach& src = reach[static_cast<std::size_t>(step.source)];
      out += " -> acquires " + src.fact_detail + " at " + info.file + ":" +
             std::to_string(src.fact_line);
      break;
    }
    out += " -> ";
    cur = step.via;
  }
  return out;
}

}  // namespace

LockGraph BuildLockGraph(const CallGraph& graph) {
  LockGraph out;

  std::set<std::string> lock_ids;
  for (const MutexMember& m : graph.mutexes) lock_ids.insert(m.qualified);
  for (const LockAcquire& a : graph.acquisitions) {
    lock_ids.insert(a.lock);
    for (const std::string& h : a.held) lock_ids.insert(h);
  }

  std::map<std::pair<std::string, std::string>, std::size_t> edge_index;
  const auto add_edge = [&out, &edge_index](const std::string& held,
                                            const std::string& acquired,
                                            int fn, std::size_t line,
                                            std::string witness) {
    const auto key = std::make_pair(held, acquired);
    if (edge_index.count(key) != 0) return;  // first witness wins
    edge_index.emplace(key, out.edges.size());
    out.edges.push_back({held, acquired, fn, line, std::move(witness)});
  };

  // Intra-function edges: an acquisition with a non-empty held set nests
  // directly under each held lock.
  for (const LockAcquire& a : graph.acquisitions) {
    const FunctionInfo& fn = graph.functions[static_cast<std::size_t>(a.fn)];
    for (const std::string& h : a.held) {
      add_edge(h, a.lock, a.fn, a.line,
               fn.qualified + " (" + Location(fn) + ") acquires " + a.lock +
                   " at " + fn.file + ":" + std::to_string(a.line) +
                   " while holding " + h);
    }
  }

  // Cross-TU edges: a call made with locks held, whose (non-cold) callee
  // transitively reaches an acquisition of another lock. One Reach
  // propagation per lock id keeps witnesses exact.
  std::map<std::string, std::vector<const LockAcquire*>> by_lock;
  for (const LockAcquire& a : graph.acquisitions) {
    by_lock[a.lock].push_back(&a);
  }
  for (const auto& [lock, acqs] : by_lock) {
    std::vector<Reach> reach(graph.functions.size());
    for (const LockAcquire* a : acqs) {
      Reach& r = reach[static_cast<std::size_t>(a->fn)];
      if (r.reaches) continue;
      r.reaches = true;
      r.source = a->fn;
      r.via = -1;
      r.fact_line = a->line;
      r.fact_detail = lock;
    }
    Propagate(graph, &reach);
    for (const Edge& e : graph.edges) {
      if (e.held.empty()) continue;
      const std::size_t callee = static_cast<std::size_t>(e.callee);
      if (graph.functions[callee].cold) continue;  // deliberate slow path
      if (!reach[callee].reaches) continue;
      const FunctionInfo& caller =
          graph.functions[static_cast<std::size_t>(e.caller)];
      for (const std::string& h : e.held) {
        add_edge(h, lock, e.caller, e.line,
                 caller.qualified + " (" + Location(caller) + ") holds " + h +
                     " at call (" + caller.file + ":" +
                     std::to_string(e.line) + ") -> " +
                     LockReachWitness(graph, reach, e.callee));
      }
    }
  }

  out.locks.assign(lock_ids.begin(), lock_ids.end());
  return out;
}

LockOrderManifest LoadLockOrderManifest(const std::string& path) {
  LockOrderManifest manifest;
  manifest.path = path;
  std::ifstream in(path);
  if (!in) return manifest;
  manifest.present = true;
  const auto trim = [](std::string s) {
    const std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) return std::string();
    const std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
  };
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t arrow = line.find("->");
    if (arrow == std::string::npos) continue;
    const std::string held = trim(line.substr(0, arrow));
    const std::string acquired = trim(line.substr(arrow + 2));
    if (held.empty() || acquired.empty()) continue;
    manifest.edges.emplace_back(held, acquired);
  }
  return manifest;
}

std::vector<LockViolation> EvaluateLockGate(
    const CallGraph& graph, const std::vector<FunctionSummary>& summaries,
    const LockGraph& lock_graph, const LockOrderManifest& manifest) {
  std::vector<LockViolation> out;

  const auto anchor_file = [&graph](int fn) {
    return fn < 0 ? std::string()
                  : graph.functions[static_cast<std::size_t>(fn)].file;
  };

  // --- lock-order-cycle: SCCs and self-loops in the observed graph ---
  {
    std::map<std::string, int> id;
    const auto node = [&id](const std::string& lock) {
      return id.emplace(lock, static_cast<int>(id.size())).first->second;
    };
    for (const LockEdge& e : lock_graph.edges) {
      node(e.held);
      node(e.acquired);
    }
    std::vector<std::vector<int>> adj(id.size());
    for (const LockEdge& e : lock_graph.edges) {
      if (e.held == e.acquired) {
        out.push_back({e.fn, "lock-order-cycle", anchor_file(e.fn), e.line,
                       "double lock: " + e.held +
                           " is acquired while already held — " + e.witness});
        continue;
      }
      adj[static_cast<std::size_t>(node(e.held))].push_back(node(e.acquired));
    }
    int num_sccs = 0;
    const std::vector<int> comp = Sccs(adj, &num_sccs);
    std::vector<int> scc_size(static_cast<std::size_t>(num_sccs), 0);
    for (const int c : comp) ++scc_size[static_cast<std::size_t>(c)];
    std::set<int> reported;
    for (const LockEdge& e : lock_graph.edges) {
      if (e.held == e.acquired) continue;
      const int ch = comp[static_cast<std::size_t>(id.at(e.held))];
      if (ch != comp[static_cast<std::size_t>(id.at(e.acquired))]) continue;
      if (scc_size[static_cast<std::size_t>(ch)] < 2) continue;
      // One finding per cycle, anchored at its first edge; the witness
      // lists every edge participating in the SCC.
      if (!reported.insert(ch).second) continue;
      std::string witness =
          "lock-order cycle (potential ABBA deadlock) among {";
      bool first = true;
      for (const auto& [lock, n] : id) {
        if (comp[static_cast<std::size_t>(n)] != ch) continue;
        if (!first) witness += ", ";
        first = false;
        witness += lock;
      }
      witness += "}:";
      for (const LockEdge& cyc : lock_graph.edges) {
        if (cyc.held == cyc.acquired) continue;
        if (comp[static_cast<std::size_t>(id.at(cyc.held))] != ch ||
            comp[static_cast<std::size_t>(id.at(cyc.acquired))] != ch) {
          continue;
        }
        witness += "\n    " + cyc.held + " -> " + cyc.acquired + ": " +
                   cyc.witness;
      }
      out.push_back(
          {e.fn, "lock-order-cycle", anchor_file(e.fn), e.line, witness});
    }
  }

  // --- lock-order-cycle: observed edges missing from the manifest ---
  // Gated on the manifest existing, mirroring layer-dag: no manifest means
  // cycles still fail but nesting is otherwise unconstrained.
  if (manifest.present) {
    for (const LockEdge& e : lock_graph.edges) {
      if (e.held == e.acquired) continue;  // already a double-lock finding
      bool declared = false;
      for (const auto& [held, acquired] : manifest.edges) {
        if (QualifiedSuffixMatch(e.held, held) &&
            QualifiedSuffixMatch(e.acquired, acquired)) {
          declared = true;
          break;
        }
      }
      if (declared) continue;
      out.push_back({e.fn, "lock-order-cycle", anchor_file(e.fn), e.line,
                     "observed lock nesting " + e.held + " -> " + e.acquired +
                         " is not declared in " + manifest.path + ": " +
                         e.witness});
    }

    // --- lock-order-cycle: cycles among the declared edges themselves ---
    std::map<std::string, int> id;
    const auto node = [&id](const std::string& lock) {
      return id.emplace(lock, static_cast<int>(id.size())).first->second;
    };
    for (const auto& [held, acquired] : manifest.edges) {
      node(held);
      node(acquired);
    }
    std::vector<std::vector<int>> adj(id.size());
    for (const auto& [held, acquired] : manifest.edges) {
      if (held == acquired) {
        out.push_back({-1, "lock-order-cycle", manifest.path, 1,
                       "declared lock-order edge " + held + " -> " +
                           acquired + " is a self-loop"});
        continue;
      }
      adj[static_cast<std::size_t>(node(held))].push_back(node(acquired));
    }
    int num_sccs = 0;
    const std::vector<int> comp = Sccs(adj, &num_sccs);
    std::vector<int> scc_size(static_cast<std::size_t>(num_sccs), 0);
    for (const int c : comp) ++scc_size[static_cast<std::size_t>(c)];
    std::set<int> reported;
    for (const auto& [lock, n] : id) {
      const int c = comp[static_cast<std::size_t>(n)];
      if (scc_size[static_cast<std::size_t>(c)] < 2) continue;
      if (!reported.insert(c).second) continue;
      std::string witness = "the declared edges in " + manifest.path +
                            " form a cycle among {";
      bool first = true;
      for (const auto& [other, m] : id) {
        if (comp[static_cast<std::size_t>(m)] != c) continue;
        if (!first) witness += ", ";
        first = false;
        witness += other;
      }
      witness += "} — no consistent global order exists";
      (void)lock;
      out.push_back({-1, "lock-order-cycle", manifest.path, 1, witness});
    }
  }

  // --- blocking-under-lock / callback-under-lock ---
  std::set<std::tuple<std::string, int, std::size_t>> seen;
  const auto add = [&out, &seen, &anchor_file](const char* kind, int fn,
                                               std::size_t line,
                                               std::string witness) {
    if (!seen.insert({kind, fn, line}).second) return;
    out.push_back({fn, kind, anchor_file(fn), line, std::move(witness)});
  };
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const FunctionInfo& fn = graph.functions[i];
    const std::string at = fn.qualified + " (" + Location(fn) + ")";
    for (const BodyFact& fact : fn.facts) {
      if (fact.held.empty()) continue;
      if (fact.kind == FactKind::kBlocking) {
        add("blocking-under-lock", static_cast<int>(i), fact.line,
            at + " calls blocking '" + fact.detail + "' at " + fn.file + ":" +
                std::to_string(fact.line) + " while holding " +
                HeldText(fact.held));
      }
      if (fact.kind == FactKind::kDispatch) {
        add("callback-under-lock", static_cast<int>(i), fact.line,
            at + " invokes std::function '" + fact.detail + "' at " +
                fn.file + ":" + std::to_string(fact.line) +
                " while holding " + HeldText(fact.held));
      }
    }
    // Virtual member calls never become edges (no static target), so a
    // held virtual call is flagged here directly.
    for (const CallSite& call : fn.calls) {
      if (call.held.empty() || !call.member) continue;
      const std::size_t sep = call.name.rfind(':');
      const std::string last =
          sep == std::string::npos ? call.name : call.name.substr(sep + 1);
      if (graph.virtual_names.count(last) == 0) continue;
      add("callback-under-lock", static_cast<int>(i), call.line,
          at + " virtual-dispatches '" + last + "' at " + fn.file + ":" +
              std::to_string(call.line) + " while holding " +
              HeldText(call.held));
    }
  }
  for (const Edge& e : graph.edges) {
    if (e.held.empty()) continue;
    const std::size_t callee = static_cast<std::size_t>(e.callee);
    if (graph.functions[callee].cold) continue;  // deliberate slow path
    const FunctionInfo& caller =
        graph.functions[static_cast<std::size_t>(e.caller)];
    const std::string prefix = caller.qualified + " (" + Location(caller) +
                               ") holds " + HeldText(e.held) + " at call (" +
                               caller.file + ":" + std::to_string(e.line) +
                               ") -> ";
    if (summaries[callee].blocking.reaches) {
      add("blocking-under-lock", e.caller, e.line,
          prefix +
              WitnessChain(graph, summaries, e.callee, FactKind::kBlocking));
    }
    if (summaries[callee].dispatch.reaches) {
      add("callback-under-lock", e.caller, e.line,
          prefix +
              WitnessChain(graph, summaries, e.callee, FactKind::kDispatch));
    }
  }
  return out;
}

std::string LockReportJson(const CallGraph& graph,
                           const LockGraph& lock_graph,
                           const LockOrderManifest& manifest,
                           const std::vector<LockViolation>& violations) {
  std::string out = "{\n  \"locks\": [";
  for (std::size_t i = 0; i < lock_graph.locks.size(); ++i) {
    if (i != 0) out += ", ";
    obs::AppendJsonString(&out, lock_graph.locks[i]);
  }
  out += "],\n  \"edges\": [\n";
  bool first = true;
  for (const LockEdge& e : lock_graph.edges) {
    if (!first) out += ",\n";
    first = false;
    const FunctionInfo& fn = graph.functions[static_cast<std::size_t>(e.fn)];
    out += "    {\"held\": ";
    obs::AppendJsonString(&out, e.held);
    out += ", \"acquired\": ";
    obs::AppendJsonString(&out, e.acquired);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, fn.file);
    out += ", \"line\": " + std::to_string(e.line) + ", \"witness\": ";
    obs::AppendJsonString(&out, e.witness);
    out += "}";
  }
  out += "\n  ],\n  \"manifest\": {\"present\": ";
  out += manifest.present ? "true" : "false";
  out += ", \"path\": ";
  obs::AppendJsonString(&out, manifest.path);
  out += ", \"edges\": [";
  first = true;
  for (const auto& [held, acquired] : manifest.edges) {
    if (!first) out += ", ";
    first = false;
    out += "{\"held\": ";
    obs::AppendJsonString(&out, held);
    out += ", \"acquired\": ";
    obs::AppendJsonString(&out, acquired);
    out += "}";
  }
  out += "]},\n  \"violations\": [\n";
  first = true;
  for (const LockViolation& v : violations) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"kind\": \"" + v.kind + "\", \"function\": ";
    obs::AppendJsonString(
        &out, v.fn < 0 ? std::string("<manifest>")
                       : graph.functions[static_cast<std::size_t>(v.fn)]
                             .qualified);
    out += ", \"file\": ";
    obs::AppendJsonString(&out, v.file);
    out += ", \"line\": " + std::to_string(v.line) + ", \"witness\": ";
    obs::AppendJsonString(&out, v.witness);
    out += "}";
  }
  out += "\n  ],\n  \"locks_total\": " +
         std::to_string(lock_graph.locks.size()) +
         ",\n  \"edges_total\": " + std::to_string(lock_graph.edges.size()) +
         ",\n  \"violations_total\": " + std::to_string(violations.size()) +
         "\n}\n";
  return out;
}

std::string LockGraphToDot(const LockGraph& lock_graph) {
  std::string out = "digraph rdfcube_lock_order {\n  rankdir=LR;\n"
                    "  node [shape=box, fontsize=9];\n";
  std::map<std::string, std::size_t> id;
  for (const std::string& lock : lock_graph.locks) {
    const std::size_t n = id.emplace(lock, id.size()).first->second;
    out += "  l" + std::to_string(n) + " [label=";
    obs::AppendJsonString(&out, lock);
    out += "];\n";
  }
  const auto node = [&out, &id](const std::string& lock) {
    const auto [it, inserted] = id.emplace(lock, id.size());
    if (inserted) {
      out += "  l" + std::to_string(it->second) + " [label=";
      obs::AppendJsonString(&out, lock);
      out += "];\n";
    }
    return it->second;
  };
  for (const LockEdge& e : lock_graph.edges) {
    const std::size_t held = node(e.held);
    const std::size_t acquired = node(e.acquired);
    out += "  l" + std::to_string(held) + " -> l" + std::to_string(acquired) +
           " [label=\"line " + std::to_string(e.line) + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace callgraph
}  // namespace rdfcube
