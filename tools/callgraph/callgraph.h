// Cross-TU call-graph linking and transitive fact summaries (DESIGN.md §5g).
//
// Takes the per-file FunctionInfo lists from function_facts.h, links call
// sites to definitions across translation units by name (an over-
// approximation: every definition whose unqualified name matches is a
// candidate; qualified calls additionally require a qualified-name suffix
// match), and computes fixpoint summaries:
//
//   reaches_alloc / reaches_lock / reaches_throw
//       the function has the fact itself, or calls — transitively — a
//       function that does. Propagation stops at RDFCUBE_COLD callees (the
//       deliberate-slow-path escape hatch) and records a witness chain.
//   recursive
//       the function sits in a call cycle. Only *direct* (receiver-less)
//       calls form recursion edges: `EvalGroup(...)` recursing is detected,
//       while `x.size()` inside an unrelated size() never creates a false
//       self-loop through the shared method name.
//   calls_virtual
//       informational: the function calls a name declared `virtual`
//       somewhere in the corpus, or through a std::function parameter.
//   taint
//       the function is an RDFCUBE_TAINT_SOURCE decode entry point, or is
//       reachable from one along *forward* call edges (caller -> callee:
//       taint flows down into the helpers a decoder hands its values to).
//       Propagation stops at RDFCUBE_TAINT_BARRIER callees (the validated-
//       boundary assertion, base/untrusted.h) and records a witness chain
//       from the source down to the tainted function.
//   reaches_blocking / reaches_dispatch
//       the lock-gate summaries (DESIGN.md §5i): the function is — or
//       transitively calls — an RDFCUBE_BLOCKING definition / lexical
//       blocking call (sleeps, ::poll), respectively a std::function or
//       virtual-dispatch invocation. Same reverse propagation and
//       RDFCUBE_COLD absorption as the hot-path facts.
//
// Lock-order graph (DESIGN.md §5i): every call edge carries the resolved
// lock ids held at its site (from the extractor's lock-scope dataflow), and
// every MutexLock acquisition is resolved against the corpus-wide Mutex
// members. BuildLockGraph derives the global order graph — edge A -> B when
// B is acquired (directly or through non-cold callees) while A is held —
// and EvaluateLockGate runs Tarjan over it: any SCC or self-loop is a
// potential ABBA deadlock (lock-order-cycle); blocking-under-lock and
// callback-under-lock ban parking the thread or running unknown code while
// a Mutex is held. Sanctioned orders are declared in tools/lock_order.txt.
//
// The gate consumers: lint checks hot-path-alloc / hot-path-lock /
// no-throw-transitive / unbounded-recursion / untrusted-size-sink /
// unchecked-size-arith / missing-limit-clamp / lock-order-cycle /
// blocking-under-lock / callback-under-lock (tools/lint_checks.cc) and the
// rdfcube_callgraph CLI (DOT/JSON export, reachability queries,
// hot_path_report.json, taint_report.json, lock_report.json).

#ifndef RDFCUBE_TOOLS_CALLGRAPH_CALLGRAPH_H_
#define RDFCUBE_TOOLS_CALLGRAPH_CALLGRAPH_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/callgraph/function_facts.h"
#include "tools/source_text.h"

namespace rdfcube {
namespace callgraph {

/// \brief One resolved call edge in the linked graph.
struct Edge {
  int caller = -1;       ///< Index into CallGraph::functions.
  int callee = -1;
  std::size_t line = 0;  ///< 1-based call-site line in the caller's file.
  bool direct = false;   ///< Receiver-less call written as a plain name.
  /// Resolved lock ids held at the call site (empty = lock-free call).
  /// Edges are deduplicated per held signature, so a locked and an unlocked
  /// call to the same callee stay distinct.
  std::vector<std::string> held;
};

/// \brief One resolved MutexLock acquisition site.
struct LockAcquire {
  int fn = -1;            ///< Acquiring function.
  std::string lock;       ///< Resolved lock id (qualified Mutex member or
                          ///< function-local identity).
  std::size_t line = 0;   ///< 1-based acquisition line in fn's file.
  std::vector<std::string> held;  ///< Resolved lock ids held at the decl.
};

/// \brief The linked cross-TU call graph.
struct CallGraph {
  std::vector<FunctionInfo> functions;  ///< All extracted definitions.
  std::vector<Edge> edges;              ///< Resolved, deduplicated edges.
  std::set<std::string> virtual_names;  ///< Names declared virtual anywhere.
  std::vector<MutexMember> mutexes;     ///< Corpus-wide Mutex data members.
  std::vector<LockAcquire> acquisitions;  ///< Resolved MutexLock sites.

  /// Indices of functions whose qualified name ends with `suffix`
  /// (or equals it). Empty when none match.
  std::vector<int> FindBySuffix(const std::string& suffix) const;
};

/// \brief How one fact kind reaches one function.
struct Reach {
  bool reaches = false;
  int source = -1;          ///< Function owning the originating fact.
  int via = -1;             ///< Next callee on the witness path (-1 = self).
  std::size_t via_line = 0; ///< Call-site line towards `via`.
  std::size_t fact_line = 0;   ///< Line of the originating fact (source's).
  std::string fact_detail;     ///< Token of the originating fact.
};

/// \brief How untrusted input reaches one function (forward propagation
/// from RDFCUBE_TAINT_SOURCE definitions; see DESIGN.md §5h).
struct Taint {
  bool tainted = false;
  int source = -1;          ///< The RDFCUBE_TAINT_SOURCE function.
  int via = -1;             ///< Caller one step back towards the source
                            ///< (-1 = this function is the source).
  std::size_t via_line = 0; ///< Call-site line in `via` towards this fn.
};

/// \brief Transitive summary of one function.
struct FunctionSummary {
  Reach alloc;   ///< kAlloc facts plus unreserved kGrowth.
  Reach lock;
  Reach thrown;  ///< ("throw" is a keyword.)
  Reach blocking;  ///< RDFCUBE_BLOCKING definitions + lexical kBlocking.
  Reach dispatch;  ///< std::function params + virtual member calls.
  Taint taint;   ///< Untrusted-input reachability (taint gate).
  bool recursive = false;   ///< Member of a direct-call cycle.
  std::vector<int> cycle;   ///< The strongly connected component (when
                            ///< recursive), sorted.
  bool calls_virtual = false;
};

/// Extracts and links every function across `corpus` (typically the stripped
/// src/ files).
CallGraph BuildCallGraph(const std::vector<lint::SourceFile>& corpus);

/// Fixpoint transitive summaries for every function in `graph` (parallel
/// vector, indexed like graph.functions).
std::vector<FunctionSummary> ComputeSummaries(const CallGraph& graph);

/// Human-readable witness chain for why `kind` reaches function `fn`:
/// "A (file:line) -> B (file:line) -> token at file:line". Empty when the
/// fact does not reach.
std::string WitnessChain(const CallGraph& graph,
                         const std::vector<FunctionSummary>& summaries,
                         int fn, FactKind kind);

/// Graphviz DOT rendering: hot functions double-peripheries, fact-owning
/// functions colored, edges between extracted definitions.
std::string GraphToDot(const CallGraph& graph,
                       const std::vector<FunctionSummary>& summaries);

/// JSON rendering: {"functions": [...], "edges": [...], counts}. Schema
/// documented in DESIGN.md §5g.
std::string GraphToJson(const CallGraph& graph,
                        const std::vector<FunctionSummary>& summaries);

/// \brief One hot-path gate finding (also surfaced as a lint Violation).
struct HotPathViolation {
  int fn = -1;
  std::string kind;     ///< "hot-path-alloc" or "hot-path-lock".
  std::string witness;  ///< WitnessChain output.
};

/// Evaluates the hot-path purity gate over every RDFCUBE_HOT function.
std::vector<HotPathViolation> EvaluateHotGate(
    const CallGraph& graph, const std::vector<FunctionSummary>& summaries);

/// JSON report for the gate artifact (hot_path_report.json): every hot
/// function, its cleanliness, and any violations with witness chains.
std::string HotPathReportJson(const CallGraph& graph,
                              const std::vector<FunctionSummary>& summaries,
                              const std::vector<HotPathViolation>& violations);

/// Human-readable taint witness chain from the source decoder down to
/// function `fn`, ending at the given sink: "DecodeRequest (file:line) ->
/// GetBytes (file:line) -> sized sink 'resize' at file:line". Empty when
/// `fn` is not tainted.
std::string TaintWitnessChain(const CallGraph& graph,
                              const std::vector<FunctionSummary>& summaries,
                              int fn, std::size_t sink_line,
                              const std::string& sink_detail);

/// \brief One taint-gate finding (also surfaced as a lint Violation).
struct TaintViolation {
  int fn = -1;
  std::string kind;      ///< "untrusted-size-sink", "unchecked-size-arith"
                         ///< or "missing-limit-clamp".
  std::size_t line = 0;  ///< Sink line (per-sink kinds) or definition line.
  std::string witness;   ///< TaintWitnessChain output / closure diagnosis.
};

/// Evaluates the taint gate (DESIGN.md §5h) over every tainted function:
///   untrusted-size-sink   a tainted, non-barrier function contains a sized
///                         sink and no limit-shaped comparison in its body;
///   unchecked-size-arith  a tainted function computes a sink size with
///                         identifier arithmetic and never calls
///                         CheckedAdd/CheckedMul;
///   missing-limit-clamp   an RDFCUBE_TAINT_SOURCE function whose entire
///                         barrier-free call closure contains no limit-shaped
///                         comparison at all (a decoder that clamps nothing).
std::vector<TaintViolation> EvaluateTaintGate(
    const CallGraph& graph, const std::vector<FunctionSummary>& summaries);

/// JSON report for the gate artifact (taint_report.json): declared sources
/// and barriers, tainted-function count, and violations with witnesses.
std::string TaintReportJson(const CallGraph& graph,
                            const std::vector<FunctionSummary>& summaries,
                            const std::vector<TaintViolation>& violations);

/// \brief One edge of the global lock-order graph: `acquired` is taken
/// while `held` is held, somewhere in the corpus.
struct LockEdge {
  std::string held;
  std::string acquired;
  int fn = -1;           ///< Function whose acquisition realizes the edge.
  std::size_t line = 0;  ///< Acquisition line (in fn's file).
  std::string witness;   ///< Holder site -> ... -> acquisition chain.
};

/// \brief The derived global lock-order graph (DESIGN.md §5i).
struct LockGraph {
  std::vector<std::string> locks;  ///< Sorted unique lock ids.
  std::vector<LockEdge> edges;     ///< Deduplicated by (held, acquired).
};

/// Derives the lock-order graph: intra-function edges from acquisitions
/// with a non-empty held set, plus cross-TU edges where a held call site
/// reaches (through non-cold callees) a function that acquires another
/// lock. RDFCUBE_COLD callees absorb, mirroring the hot-path gate.
LockGraph BuildLockGraph(const CallGraph& graph);

/// \brief Parsed tools/lock_order.txt: the sanctioned lock-order edges.
/// Entry names match lock ids by qualified-suffix (layers.txt idiom:
/// "TraceCollector::registry_mu_ -> TraceCollector::ThreadTrace::mu").
struct LockOrderManifest {
  bool present = false;  ///< The manifest file existed and was read.
  std::string path;      ///< As given to LoadLockOrderManifest.
  std::vector<std::pair<std::string, std::string>> edges;  ///< held, acquired
};

/// Reads a lock-order manifest ('#' comments, "A -> B" lines). A missing
/// file yields present == false: cycle findings still fire, undeclared-edge
/// findings are skipped (the layer-dag manifest-gating idiom).
LockOrderManifest LoadLockOrderManifest(const std::string& path);

/// \brief One lock-gate finding (also surfaced as a lint Violation).
struct LockViolation {
  int fn = -1;           ///< Anchor function; -1 for manifest-level findings.
  std::string kind;      ///< "lock-order-cycle", "blocking-under-lock" or
                         ///< "callback-under-lock".
  std::string file;      ///< Anchor file (fn's file, or the manifest path).
  std::size_t line = 0;  ///< Anchor line.
  std::string witness;
};

/// Evaluates the lock gate (DESIGN.md §5i):
///   lock-order-cycle      an SCC or self-loop in the observed lock graph
///                         (potential ABBA deadlock / double lock), an
///                         observed edge missing from the manifest (only
///                         when one is present), or a cycle among the
///                         declared manifest edges themselves;
///   blocking-under-lock   a blocking call (RDFCUBE_BLOCKING or lexical) is
///                         made — or reached through non-cold callees —
///                         while a Mutex is held. `lock.Wait(cv)` on the
///                         held lock itself is exempt (the wait releases it);
///   callback-under-lock   a std::function parameter or virtual method is
///                         invoked — or reached — while a Mutex is held
///                         (re-entrancy / priority-inversion hazard).
std::vector<LockViolation> EvaluateLockGate(
    const CallGraph& graph, const std::vector<FunctionSummary>& summaries,
    const LockGraph& lock_graph, const LockOrderManifest& manifest);

/// JSON report for the gate artifact (lock_report.json): every lock id,
/// every observed order edge with its witness, manifest status, and
/// violations.
std::string LockReportJson(const CallGraph& graph,
                           const LockGraph& lock_graph,
                           const LockOrderManifest& manifest,
                           const std::vector<LockViolation>& violations);

/// Graphviz DOT rendering of the lock-order graph.
std::string LockGraphToDot(const LockGraph& lock_graph);

}  // namespace callgraph
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_CALLGRAPH_CALLGRAPH_H_
