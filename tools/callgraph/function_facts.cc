#include "tools/callgraph/function_facts.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace rdfcube {
namespace callgraph {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// True when `line` (code view) is a preprocessor directive start.
bool IsDirectiveStart(const std::string& line) {
  const std::string_view t = Trim(line);
  return !t.empty() && t.front() == '#';
}

// One entry of the scope stack during the brace scan.
struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind = kOther;
  std::string name;     // namespace/class name; empty otherwise
  int function = -1;    // index into the result vector for kFunction
};

// Canonicalizes a raw lock expression: strips '&' and whitespace, and drops
// an explicit `this->` (the same member as the unqualified spelling).
std::string CanonLockExpr(std::string_view expr) {
  std::string out;
  for (char c : expr) {
    if (c != '&' && c != ' ' && c != '\t') out.push_back(c);
  }
  if (out.rfind("this->", 0) == 0) out.erase(0, 6);
  return out;
}

// What a pending declaration head turned out to be when its '{' arrived.
struct HeadClass {
  Scope::Kind kind = Scope::kOther;
  std::string name;          // scope or function name (as written)
  std::string params;        // function parameter list text
  std::size_t name_line = 0; // 1-based line of the name token
  bool hot = false;
  bool cold = false;
  bool taint_source = false;
  bool taint_barrier = false;
  bool blocking = false;
  std::vector<std::string> requires_locks;  // RDFCUBE_REQUIRES arguments
};

// Classifies the declaration text accumulated since the last statement
// boundary, at the moment an opening brace is seen at namespace/class scope.
HeadClass ClassifyHead(const std::string& pending,
                       const std::vector<std::size_t>& pending_line) {
  HeadClass out;
  static const std::regex kNamespaceRe(R"(\bnamespace\b)");
  static const std::regex kEnumRe(R"(\benum\b)");
  // Class-head name: skip ALL_CAPS attribute macros (optionally with a
  // parenthesized argument, e.g. RDFCUBE_CAPABILITY("mutex")) and accept a
  // ::-qualified name (out-of-line nested classes, `struct Outer::Inner`).
  static const std::regex kClassRe(
      R"(\b(class|struct|union)\s+(?:[A-Z][A-Z_0-9]*\s*(?:\([^()]*\))?\s+)*([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*))");

  if (std::regex_search(pending, kEnumRe)) return out;
  if (std::regex_search(pending, kNamespaceRe)) {
    out.kind = Scope::kNamespace;
    // Last identifier before the brace names the namespace ("" = anonymous).
    std::size_t end = pending.size();
    while (end > 0 && !IsIdentChar(pending[end - 1])) --end;
    std::size_t begin = end;
    while (begin > 0 && IsIdentChar(pending[begin - 1])) --begin;
    out.name = pending.substr(begin, end - begin);
    if (out.name == "namespace") out.name.clear();
    return out;
  }
  std::smatch m;
  if (std::regex_search(pending, m, kClassRe)) {
    out.kind = Scope::kClass;
    out.name = m[2];
    return out;
  }

  // Function shape: identifier (possibly ::-qualified, possibly a dtor ~)
  // immediately before a '('. A '(' whose preceding identifier is a type
  // keyword is part of the return type, not the header (`std::optional<
  // std::function<void()>> AdmissionQueue::Pop(...)` — the name is Pop, not
  // void), so such candidates are skipped and the scan resumes at the next
  // '('.
  static const std::set<std::string> kTypeKeyword = {
      "void", "bool", "char", "int",    "long",     "short",   "float",
      "double", "auto", "signed", "unsigned", "wchar_t", "char16_t",
      "char32_t"};
  // Control keywords can only appear inside function bodies, but be safe.
  static const std::set<std::string> kNotAFunction = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignas", "alignof", "decltype", "noexcept"};
  std::size_t paren = pending.find('(');
  std::size_t begin = 0, end = 0;
  std::string name;
  while (paren != std::string::npos) {
    // '=' outside parentheses means an initializer (array/aggregate/lambda
    // assignment), not a function header. '=' inside parens is a default
    // argument and fine. "operator=" is exempted by the paren rule: its '='
    // sits before the '(' we find, so check only up to the candidate '('.
    int depth = 0;
    for (std::size_t i = 0; i < paren; ++i) {
      const char c = pending[i];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == '=' && depth == 0) {
        // "operator=" / "operator==" name a function; any other top-level
        // '=' before the parameter list means an initializer.
        std::size_t b = i;
        while (b > 0 && pending[b - 1] == '=') --b;
        const bool names_operator =
            b >= 8 && pending.compare(b - 8, 8, "operator") == 0;
        if (!names_operator) return out;
      }
    }
    end = paren;
    while (end > 0 && pending[end - 1] == ' ') --end;
    begin = end;
    while (begin > 0 &&
           (IsIdentChar(pending[begin - 1]) || pending[begin - 1] == ':' ||
            pending[begin - 1] == '~')) {
      --begin;
    }
    if (begin == end) return out;
    name = pending.substr(begin, end - begin);
    while (!name.empty() && name.front() == ':') name.erase(name.begin());
    if (name.empty()) return out;
    if (kTypeKeyword.count(name) != 0) {
      paren = pending.find('(', paren + 1);
      continue;
    }
    break;
  }
  if (paren == std::string::npos || name.empty()) return out;
  const std::string last =
      name.substr(name.rfind(':') == std::string::npos
                      ? 0
                      : name.rfind(':') + 1);
  if (kNotAFunction.count(last) != 0) return out;

  // Parameter list: up to the matching ')'.
  int pdepth = 0;
  std::size_t close = paren;
  for (; close < pending.size(); ++close) {
    if (pending[close] == '(') ++pdepth;
    if (pending[close] == ')') {
      if (--pdepth == 0) break;
    }
  }
  out.kind = Scope::kFunction;
  out.name = name;
  out.params = close < pending.size()
                   ? pending.substr(paren + 1, close - paren - 1)
                   : std::string();
  out.name_line = begin < pending_line.size() ? pending_line[begin] : 0;
  out.hot = pending.find("RDFCUBE_HOT") != std::string::npos;
  out.cold = pending.find("RDFCUBE_COLD") != std::string::npos;
  out.taint_source =
      pending.find("RDFCUBE_TAINT_SOURCE") != std::string::npos;
  out.taint_barrier =
      pending.find("RDFCUBE_TAINT_BARRIER") != std::string::npos;
  out.blocking = pending.find("RDFCUBE_BLOCKING") != std::string::npos;
  // RDFCUBE_REQUIRES(mu_) on the header transfers the caller's lock into
  // the body: every fact and call site inherits it as held (DESIGN.md §5i).
  static const std::regex kRequiresRe(R"(RDFCUBE_REQUIRES\s*\(([^()]*)\))");
  std::smatch rq;
  if (std::regex_search(pending, rq, kRequiresRe)) {
    const std::string args = rq[1];
    std::size_t start = 0;
    while (start <= args.size()) {
      const std::size_t comma = args.find(',', start);
      const std::size_t len =
          comma == std::string::npos ? std::string::npos : comma - start;
      std::string one = CanonLockExpr(args.substr(start, len));
      if (!one.empty()) out.requires_locks.push_back(std::move(one));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return out;
}

// Names of std::function-typed parameters (calls through them are dynamic
// dispatch, not static call edges).
std::set<std::string> FunctionTypedParams(const std::string& params) {
  std::set<std::string> out;
  static const std::regex kFnParam(
      R"(\bfunction\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>\s*(?:const\s*)?&*\s*([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(params.begin(), params.end(), kFnParam);
       it != std::sregex_iterator(); ++it) {
    out.insert((*it)[1]);
  }
  return out;
}

// One accumulated body line: the characters of a function body that fell on
// a single source line.
struct BodyLine {
  std::size_t line = 0;  // 1-based
  std::string text;
};

// Identifier-on-identifier `+`/`*` arithmetic ("a + b", "n * x.size()"):
// the overflow-prone shape. Literal offsets ("n + 1") deliberately do not
// match — they cannot overflow past one element's worth.
bool HasIdentArith(const std::string& text) {
  static const std::regex kIdentArith(
      R"([A-Za-z_][\w.]*(?:\(\s*\))?\s*[+*]\s*[A-Za-z_])");
  return std::regex_search(text, kIdentArith);
}

// True when `text` compares something against a limit-shaped expression:
// a relational/equality operator on the same line as a named constant
// (kFooMax), sizeof, a .size()/.length()/Remaining() call, or an identifier
// containing max/limit/cap. `->`, `<<` and `>>` are blanked first so member
// access and shifts cannot masquerade as comparisons.
bool HasLimitComparison(const std::string& text) {
  static const std::regex kLimitToken(
      R"(\bk[A-Z]\w*|\bsizeof\b|[.>]\s*(size|length|capacity|Remaining|remaining)\s*\(|\b\w*([Mm]ax|MAX|[Ll]imit|LIMIT|[Cc]ap\b)\w*)");
  if (!std::regex_search(text, kLimitToken)) return false;
  std::string flat = text;
  for (const char* op : {"->", "<<", ">>"}) {
    for (std::size_t at = flat.find(op); at != std::string::npos;
         at = flat.find(op, at)) {
      flat[at] = flat[at + 1] = ' ';
    }
  }
  static const std::regex kCompare(R"(<=|>=|==|!=|<|>)");
  return std::regex_search(flat, kCompare);
}

// One MutexLock RAII scope currently open during the body walk.
struct ActiveLock {
  std::string var;   // the MutexLock variable name
  std::string expr;  // canonicalized lock expression ("mu_", "s->a_")
  int depth = 0;     // brace depth at the declaration
};

// Scans the collected body lines of one function for facts and call sites.
void ScanBody(const std::vector<BodyLine>& body, FunctionInfo* fn) {
  static const std::regex kAlloc(
      R"(\bnew\b|\b(malloc|calloc|realloc|strdup)\s*\(|\bmake_unique\s*<|\bmake_shared\s*<|\bto_string\s*\()");
  static const std::regex kGrowth(
      R"([.>](push_back|emplace_back|emplace|insert|append|resize|assign)\s*\()");
  static const std::regex kThrow(R"(\bthrow\b)");
  static const std::regex kLock(
      R"(\bMutexLock\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b|[.>](Lock|lock)\s*\()");
  // Lexical blocking seeds (most blocking entry points carry RDFCUBE_BLOCKING
  // instead): sleeps and readiness waits park the thread in the kernel.
  static const std::regex kBlockingCall(
      R"(\b(sleep_for|sleep_until|usleep|nanosleep|poll|select|epoll_wait)\s*\()");
  // A MutexLock RAII declaration with its lock argument on one line (the
  // idiomatic form; a wrapped argument list is not tracked as a scope).
  static const std::regex kMutexLockDecl(
      R"(\bMutexLock\s+([A-Za-z_]\w*)\s*\(([^();]*)\))");
  // A function-local `Mutex x;` (a lock identity scoped to this function).
  static const std::regex kLocalMutex(R"(\bMutex\s+([A-Za-z_]\w*)\s*;)");
  static const std::regex kReserve(R"(\breserve\s*\()");
  static const std::regex kCheckedMath(R"(\bChecked(Add|Mul|Sub)\s*[<(])");
  // Sized sinks (taint gate, DESIGN.md §5h): size-taking memory operations.
  static const std::regex kSizedCall(
      R"([.>](resize|reserve|assign)\s*\(|\b(memcpy|memmove|memset|strncpy)\s*\()");
  static const std::regex kNewArray(R"(\bnew\s+[A-Za-z_][\w:<> ]*\[)");
  // Subscript whose index mixes two identifiers (`buf[a + b]`): an
  // unchecked-offset access. Plain `buf[i]` and literal offsets are not
  // sinks — the gate is a tripwire for computed offsets, not an index proof.
  static const std::regex kIndexArith(
      R"(\[[^\[\]]*[A-Za-z_][\w.]*(?:\(\s*\))?\s*[+*]\s*[A-Za-z_][^\[\]]*\])");
  static const std::regex kCall(R"(((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\()");
  static const std::set<std::string> kKeywords = {
      "if",      "for",     "while",    "switch",  "return", "catch",
      "sizeof",  "alignof", "decltype", "noexcept", "alignas", "new",
      "delete",  "static_assert", "defined", "assert", "throw",
      // Type keywords before '(' are functional casts / function types
      // (`std::function<void()>`), never call sites.
      "void",    "bool",    "char",     "int",     "long",   "short",
      "float",   "double",  "auto",     "signed",  "unsigned"};

  const std::set<std::string> fn_params = FunctionTypedParams(fn->params);

  std::vector<ActiveLock> active;  // MutexLock scopes open at line start
  int depth = 0;                   // brace depth at line start
  bool in_static_stmt = false;
  for (const BodyLine& bl : body) {
    const std::string& text = bl.text;

    // Lock-scope events on this line, in character order: nested braces
    // (body_append keeps them) and MutexLock declarations. The line-start
    // state plus a replay answers "what is held at position p".
    struct LockEvent {
      std::size_t pos = 0;
      enum Kind { kOpen, kClose, kAcquire } kind = kOpen;
      std::string var;
      std::string expr;
    };
    std::vector<LockEvent> events;
    for (std::size_t p = 0; p < text.size(); ++p) {
      if (text[p] == '{') events.push_back({p, LockEvent::kOpen, "", ""});
      if (text[p] == '}') events.push_back({p, LockEvent::kClose, "", ""});
    }
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), kMutexLockDecl);
         it != std::sregex_iterator(); ++it) {
      events.push_back({static_cast<std::size_t>(it->position(0)),
                        LockEvent::kAcquire, (*it)[1],
                        CanonLockExpr((*it)[2].str())});
    }
    std::sort(events.begin(), events.end(),
              [](const LockEvent& a, const LockEvent& b) {
                return a.pos < b.pos;
              });
    // Replays this line's events from the line-start state up to — strictly
    // before — `pos`: a MutexLock's own `lock` fact sees only outer locks.
    const auto active_at = [&](std::size_t pos) {
      std::vector<ActiveLock> held = active;
      int d = depth;
      for (const LockEvent& e : events) {
        if (e.pos >= pos) break;
        if (e.kind == LockEvent::kOpen) {
          ++d;
        } else if (e.kind == LockEvent::kClose) {
          --d;
          while (!held.empty() && held.back().depth > d) held.pop_back();
        } else if (!e.expr.empty()) {
          held.push_back({e.var, e.expr, d});
        }
      }
      return held;
    };
    const auto held_at = [&](std::size_t pos) {
      std::vector<std::string> out = fn->requires_locks;
      for (const ActiveLock& l : active_at(pos)) out.push_back(l.expr);
      return out;
    };
    for (const LockEvent& e : events) {
      if (e.kind == LockEvent::kAcquire && !e.expr.empty()) {
        fn->lock_acquisitions.push_back({e.expr, bl.line, held_at(e.pos)});
      }
    }
    for (auto it =
             std::sregex_iterator(text.begin(), text.end(), kLocalMutex);
         it != std::sregex_iterator(); ++it) {
      fn->local_mutexes.push_back((*it)[1]);
    }

    if (std::regex_search(text, kReserve)) fn->has_reserve = true;
    if (std::regex_search(text, kCheckedMath)) {
      fn->has_checked_math = true;
      fn->has_limit_guard = true;
    }
    if (!fn->has_limit_guard && HasLimitComparison(text)) {
      fn->has_limit_guard = true;
    }

    // Statements starting with `static` are one-time initialization (the
    // DefaultCounter idiom): no facts, no call edges, until the ';'.
    bool skip = in_static_stmt;
    if (!skip) {
      const std::string_view t = Trim(text);
      if (t.substr(0, 6) == "static" &&
          (t.size() == 6 || !IsIdentChar(t[6]))) {
        skip = true;
        in_static_stmt = true;
      }
    }
    if (in_static_stmt && text.find(';') != std::string::npos) {
      in_static_stmt = false;
    }

    if (!skip) {
      std::smatch m;
      if (std::regex_search(text, m, kAlloc)) {
        fn->facts.push_back({FactKind::kAlloc, bl.line, m[0], {}});
      }
      if (std::regex_search(text, m, kGrowth)) {
        fn->facts.push_back({FactKind::kGrowth, bl.line, m[1], {}});
      }
      if (std::regex_search(text, m, kThrow)) {
        fn->facts.push_back({FactKind::kThrow, bl.line, "throw", {}});
      }
      if (std::regex_search(text, m, kLock)) {
        fn->facts.push_back(
            {FactKind::kLock, bl.line,
             m[1].matched ? m[1].str() : m[0].str(), {}});
      }
      if (std::regex_search(text, m, kBlockingCall)) {
        fn->facts.push_back(
            {FactKind::kBlocking, bl.line, m[1],
             held_at(static_cast<std::size_t>(m.position(0)))});
      }
      // Sized sinks and their size-expression arithmetic. The size
      // expression is approximated as the rest of the line up to the
      // matching ')'/']' — the witness is the sink itself, not a parse of
      // the argument.
      const auto arg_text = [&text](std::size_t from, char open, char close) {
        int nest = 1;
        std::size_t end = from;
        for (; end < text.size() && nest > 0; ++end) {
          if (text[end] == open) ++nest;
          if (text[end] == close) --nest;
        }
        return text.substr(from, end - from);
      };
      if (std::regex_search(text, m, kSizedCall)) {
        const std::string token = m[1].matched ? m[1].str() : m[2].str();
        const std::size_t after =
            static_cast<std::size_t>(m.position(0) + m.length(0));
        const std::string args = arg_text(after, '(', ')');
        const bool arith = HasIdentArith(args);
        // A size expression that is a plain sizeof (the double<->uint64
        // bit-cast idiom, `memcpy(&bits, &v, sizeof(bits))`) is statically
        // sized — nothing untrusted can steer it. `n * sizeof(T)` still has
        // identifier arithmetic and stays a sink.
        if (args.find("sizeof") == std::string::npos || arith) {
          fn->facts.push_back({FactKind::kSizedSink, bl.line, token, {}});
          if (arith) {
            fn->facts.push_back({FactKind::kSizeArith, bl.line, token, {}});
          }
        }
      }
      if (std::regex_search(text, m, kNewArray)) {
        fn->facts.push_back({FactKind::kSizedSink, bl.line, "new[]", {}});
        const std::size_t after =
            static_cast<std::size_t>(m.position(0) + m.length(0));
        if (HasIdentArith(arg_text(after, '[', ']'))) {
          fn->facts.push_back({FactKind::kSizeArith, bl.line, "new[]", {}});
        }
      }
      if (!std::regex_search(text, m, kSizedCall) &&
          !std::regex_search(text, m, kNewArray) &&
          std::regex_search(text, m, kIndexArith)) {
        fn->facts.push_back({FactKind::kSizedSink, bl.line, "operator[]", {}});
      }
      for (auto it = std::sregex_iterator(text.begin(), text.end(), kCall);
           it != std::sregex_iterator(); ++it) {
        const std::string name = (*it)[1];
        if (kKeywords.count(name) != 0) continue;
        const std::size_t name_pos = static_cast<std::size_t>(it->position(1));
        if (fn_params.count(name) != 0) {
          fn->facts.push_back(
              {FactKind::kDispatch, bl.line, name, held_at(name_pos)});
          continue;
        }
        // A receiver (`x.f(` / `p->f(`) marks a member call; only direct
        // (receiver-less) calls participate in recursion detection.
        std::size_t before = name_pos;
        while (before > 0 && text[before - 1] == ' ') --before;
        const bool member =
            before > 0 && (text[before - 1] == '.' || text[before - 1] == '>');
        std::vector<std::string> held = held_at(name_pos);
        // Sanctioned condvar idiom: `lock.Wait(cv)` on an active MutexLock
        // releases that lock's mutex for the wait — exclude it from the
        // site's held set. A wait while a *different* lock stays held keeps
        // that other lock and stays a finding.
        if (member && !held.empty() &&
            (name == "Wait" || name == "WaitWithDeadline") && before > 0 &&
            text[before - 1] == '.') {
          std::size_t rbegin = before - 1;
          while (rbegin > 0 && IsIdentChar(text[rbegin - 1])) --rbegin;
          const std::string receiver =
              text.substr(rbegin, before - 1 - rbegin);
          for (const ActiveLock& l : active_at(name_pos)) {
            if (l.var == receiver) {
              held.erase(std::remove(held.begin(), held.end(), l.expr),
                         held.end());
            }
          }
        }
        fn->calls.push_back({name, bl.line, member, std::move(held)});
      }
    }

    // Commit this line's lock-scope state for the next line.
    active = active_at(text.size() + 1);
    for (const LockEvent& e : events) {
      if (e.kind == LockEvent::kOpen) ++depth;
      if (e.kind == LockEvent::kClose) --depth;
    }
  }
}

}  // namespace

const char* FactKindName(FactKind kind) {
  switch (kind) {
    case FactKind::kAlloc: return "alloc";
    case FactKind::kGrowth: return "growth";
    case FactKind::kThrow: return "throw";
    case FactKind::kLock: return "lock";
    case FactKind::kDispatch: return "dispatch";
    case FactKind::kSizedSink: return "sized_sink";
    case FactKind::kSizeArith: return "size_arith";
    case FactKind::kBlocking: return "blocking";
  }
  return "unknown";
}

std::vector<FunctionInfo> ExtractFunctions(const lint::SourceFile& file) {
  return ExtractFunctions(file, nullptr);
}

std::vector<FunctionInfo> ExtractFunctions(const lint::SourceFile& file,
                                           std::vector<MutexMember>* mutexes) {
  std::vector<FunctionInfo> out;
  std::vector<Scope> scopes;
  std::string pending;
  std::vector<std::size_t> pending_line;
  int pending_paren = 0;
  int current_fn = -1;  // innermost open function, or -1
  std::vector<BodyLine> body;  // accumulated body of current_fn

  const auto clear_pending = [&] {
    pending.clear();
    pending_line.clear();
    pending_paren = 0;
  };
  const auto body_append = [&](char c, std::size_t line1) {
    if (body.empty() || body.back().line != line1) {
      body.push_back({line1, std::string()});
    }
    body.back().text.push_back(c);
  };
  const auto finalize_fn = [&](std::size_t line1) {
    FunctionInfo& fn = out[static_cast<std::size_t>(current_fn)];
    fn.body_end = line1;
    ScanBody(body, &fn);
    body.clear();
    current_fn = -1;
    // A function cannot lexically nest in another (lambdas never open a
    // kFunction scope), so after the pop no enclosing function resumes.
  };

  bool prev_line_continued = false;  // directive continuation via '\'
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const std::size_t line1 = i + 1;
    if (prev_line_continued || IsDirectiveStart(line)) {
      const std::string_view t = Trim(line);
      prev_line_continued = !t.empty() && t.back() == '\\';
      continue;
    }
    for (char c : line) {
      if (c == '{') {
        if (current_fn >= 0) {
          body_append(c, line1);
          scopes.push_back({Scope::kOther, "", -1});
          continue;
        }
        HeadClass head = ClassifyHead(pending, pending_line);
        clear_pending();
        Scope s;
        s.kind = head.kind;
        s.name = head.name;
        if (head.kind == Scope::kFunction) {
          FunctionInfo fn;
          fn.file = file.path;
          fn.line = head.name_line != 0 ? head.name_line : line1;
          fn.params = head.params;
          fn.hot = head.hot;
          fn.cold = head.cold;
          fn.taint_source = head.taint_source;
          fn.taint_barrier = head.taint_barrier;
          fn.blocking = head.blocking;
          fn.requires_locks = head.requires_locks;
          fn.qualified.clear();
          for (const Scope& sc : scopes) {
            if ((sc.kind == Scope::kNamespace || sc.kind == Scope::kClass) &&
                !sc.name.empty()) {
              fn.qualified += sc.name;
              fn.qualified += "::";
            }
          }
          fn.qualified += head.name;
          const std::size_t sep = head.name.rfind(':');
          fn.name = sep == std::string::npos ? head.name
                                             : head.name.substr(sep + 1);
          out.push_back(std::move(fn));
          s.function = static_cast<int>(out.size()) - 1;
          current_fn = s.function;
          body.clear();
        }
        scopes.push_back(std::move(s));
      } else if (c == '}') {
        if (!scopes.empty()) {
          const Scope top = scopes.back();
          scopes.pop_back();
          if (top.kind == Scope::kFunction) {
            finalize_fn(line1);
          } else if (current_fn >= 0) {
            body_append(c, line1);
          }
        }
        clear_pending();
      } else if (current_fn >= 0) {
        body_append(c, line1);
      } else if (c == ';' && pending_paren == 0) {
        // A statement boundary at class scope: the flushed declaration may
        // be a `Mutex` data member — a corpus-wide lock identity the
        // lock-order graph resolves held expressions against.
        if (mutexes != nullptr && !scopes.empty() &&
            scopes.back().kind == Scope::kClass) {
          static const std::regex kMutexMemberRe(
              R"(\bMutex\s+([A-Za-z_]\w*)\s*$)");
          std::string decl = pending;
          while (!decl.empty() && decl.back() == ' ') decl.pop_back();
          std::smatch mm;
          if (std::regex_search(decl, mm, kMutexMemberRe)) {
            MutexMember member;
            member.member = mm[1];
            for (const Scope& sc : scopes) {
              if ((sc.kind == Scope::kNamespace ||
                   sc.kind == Scope::kClass) &&
                  !sc.name.empty()) {
                member.qualified += sc.name;
                member.qualified += "::";
              }
            }
            member.qualified += member.member;
            member.file = file.path;
            const std::size_t at = static_cast<std::size_t>(mm.position(1));
            member.line = at < pending_line.size() ? pending_line[at] : line1;
            mutexes->push_back(std::move(member));
          }
        }
        clear_pending();
      } else {
        if (c == '(') ++pending_paren;
        if (c == ')' && pending_paren > 0) --pending_paren;
        pending.push_back(c);
        pending_line.push_back(line1);
      }
    }
    if (current_fn < 0 && !pending.empty() && pending.back() != ' ') {
      pending.push_back(' ');
      pending_line.push_back(line1);
    }
  }
  return out;
}

std::vector<std::string> VirtualMethodNames(const lint::SourceFile& file) {
  std::vector<std::string> out;
  static const std::regex kVirtual(R"(\bvirtual\b)");
  static const std::regex kName(R"((~?[A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], kVirtual)) continue;
    // The method name is the identifier before the first '(' on this line or,
    // for wrapped declarations, the next one.
    for (std::size_t j = i; j < file.code.size() && j <= i + 1; ++j) {
      std::smatch m;
      if (std::regex_search(file.code[j], m, kName)) {
        out.push_back(m[1]);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace callgraph
}  // namespace rdfcube
