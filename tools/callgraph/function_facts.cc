#include "tools/callgraph/function_facts.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace rdfcube {
namespace callgraph {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// True when `line` (code view) is a preprocessor directive start.
bool IsDirectiveStart(const std::string& line) {
  const std::string_view t = Trim(line);
  return !t.empty() && t.front() == '#';
}

// One entry of the scope stack during the brace scan.
struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kOther };
  Kind kind = kOther;
  std::string name;     // namespace/class name; empty otherwise
  int function = -1;    // index into the result vector for kFunction
};

// What a pending declaration head turned out to be when its '{' arrived.
struct HeadClass {
  Scope::Kind kind = Scope::kOther;
  std::string name;          // scope or function name (as written)
  std::string params;        // function parameter list text
  std::size_t name_line = 0; // 1-based line of the name token
  bool hot = false;
  bool cold = false;
  bool taint_source = false;
  bool taint_barrier = false;
};

// Classifies the declaration text accumulated since the last statement
// boundary, at the moment an opening brace is seen at namespace/class scope.
HeadClass ClassifyHead(const std::string& pending,
                       const std::vector<std::size_t>& pending_line) {
  HeadClass out;
  static const std::regex kNamespaceRe(R"(\bnamespace\b)");
  static const std::regex kEnumRe(R"(\benum\b)");
  static const std::regex kClassRe(R"(\b(class|struct|union)\s+([A-Za-z_]\w*))");

  if (std::regex_search(pending, kEnumRe)) return out;
  if (std::regex_search(pending, kNamespaceRe)) {
    out.kind = Scope::kNamespace;
    // Last identifier before the brace names the namespace ("" = anonymous).
    std::size_t end = pending.size();
    while (end > 0 && !IsIdentChar(pending[end - 1])) --end;
    std::size_t begin = end;
    while (begin > 0 && IsIdentChar(pending[begin - 1])) --begin;
    out.name = pending.substr(begin, end - begin);
    if (out.name == "namespace") out.name.clear();
    return out;
  }
  std::smatch m;
  if (std::regex_search(pending, m, kClassRe)) {
    out.kind = Scope::kClass;
    out.name = m[2];
    return out;
  }

  // '=' outside parentheses means an initializer (array/aggregate/lambda
  // assignment), not a function header. '=' inside parens is a default
  // argument and fine. "operator=" is exempted below by the paren rule:
  // its '=' sits before the '(' we find, so check only up to the first '('.
  const std::size_t paren = pending.find('(');
  if (paren == std::string::npos) return out;
  int depth = 0;
  for (std::size_t i = 0; i < paren; ++i) {
    const char c = pending[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '=' && depth == 0) {
      // "operator=" / "operator==" name a function; any other top-level '='
      // before the parameter list means an initializer.
      std::size_t b = i;
      while (b > 0 && pending[b - 1] == '=') --b;
      const bool names_operator =
          b >= 8 && pending.compare(b - 8, 8, "operator") == 0;
      if (!names_operator) return out;
    }
  }

  // Function shape: identifier (possibly ::-qualified, possibly a dtor ~)
  // immediately before the first '('.
  std::size_t end = paren;
  while (end > 0 && pending[end - 1] == ' ') --end;
  std::size_t begin = end;
  while (begin > 0 && (IsIdentChar(pending[begin - 1]) ||
                       pending[begin - 1] == ':' || pending[begin - 1] == '~')) {
    --begin;
  }
  if (begin == end) return out;
  std::string name = pending.substr(begin, end - begin);
  while (!name.empty() && name.front() == ':') name.erase(name.begin());
  if (name.empty()) return out;
  // Control keywords can only appear inside function bodies, but be safe.
  static const std::set<std::string> kNotAFunction = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignas", "alignof", "decltype", "noexcept"};
  const std::string last =
      name.substr(name.rfind(':') == std::string::npos
                      ? 0
                      : name.rfind(':') + 1);
  if (kNotAFunction.count(last) != 0) return out;

  // Parameter list: up to the matching ')'.
  int pdepth = 0;
  std::size_t close = paren;
  for (; close < pending.size(); ++close) {
    if (pending[close] == '(') ++pdepth;
    if (pending[close] == ')') {
      if (--pdepth == 0) break;
    }
  }
  out.kind = Scope::kFunction;
  out.name = name;
  out.params = close < pending.size()
                   ? pending.substr(paren + 1, close - paren - 1)
                   : std::string();
  out.name_line = begin < pending_line.size() ? pending_line[begin] : 0;
  out.hot = pending.find("RDFCUBE_HOT") != std::string::npos;
  out.cold = pending.find("RDFCUBE_COLD") != std::string::npos;
  out.taint_source =
      pending.find("RDFCUBE_TAINT_SOURCE") != std::string::npos;
  out.taint_barrier =
      pending.find("RDFCUBE_TAINT_BARRIER") != std::string::npos;
  return out;
}

// Names of std::function-typed parameters (calls through them are dynamic
// dispatch, not static call edges).
std::set<std::string> FunctionTypedParams(const std::string& params) {
  std::set<std::string> out;
  static const std::regex kFnParam(
      R"(\bfunction\s*<[^<>]*(?:<[^<>]*>[^<>]*)*>\s*(?:const\s*)?&*\s*([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(params.begin(), params.end(), kFnParam);
       it != std::sregex_iterator(); ++it) {
    out.insert((*it)[1]);
  }
  return out;
}

// One accumulated body line: the characters of a function body that fell on
// a single source line.
struct BodyLine {
  std::size_t line = 0;  // 1-based
  std::string text;
};

// Identifier-on-identifier `+`/`*` arithmetic ("a + b", "n * x.size()"):
// the overflow-prone shape. Literal offsets ("n + 1") deliberately do not
// match — they cannot overflow past one element's worth.
bool HasIdentArith(const std::string& text) {
  static const std::regex kIdentArith(
      R"([A-Za-z_][\w.]*(?:\(\s*\))?\s*[+*]\s*[A-Za-z_])");
  return std::regex_search(text, kIdentArith);
}

// True when `text` compares something against a limit-shaped expression:
// a relational/equality operator on the same line as a named constant
// (kFooMax), sizeof, a .size()/.length()/Remaining() call, or an identifier
// containing max/limit/cap. `->`, `<<` and `>>` are blanked first so member
// access and shifts cannot masquerade as comparisons.
bool HasLimitComparison(const std::string& text) {
  static const std::regex kLimitToken(
      R"(\bk[A-Z]\w*|\bsizeof\b|[.>]\s*(size|length|capacity|Remaining|remaining)\s*\(|\b\w*([Mm]ax|MAX|[Ll]imit|LIMIT|[Cc]ap\b)\w*)");
  if (!std::regex_search(text, kLimitToken)) return false;
  std::string flat = text;
  for (const char* op : {"->", "<<", ">>"}) {
    for (std::size_t at = flat.find(op); at != std::string::npos;
         at = flat.find(op, at)) {
      flat[at] = flat[at + 1] = ' ';
    }
  }
  static const std::regex kCompare(R"(<=|>=|==|!=|<|>)");
  return std::regex_search(flat, kCompare);
}

// Scans the collected body lines of one function for facts and call sites.
void ScanBody(const std::vector<BodyLine>& body, FunctionInfo* fn) {
  static const std::regex kAlloc(
      R"(\bnew\b|\b(malloc|calloc|realloc|strdup)\s*\(|\bmake_unique\s*<|\bmake_shared\s*<|\bto_string\s*\()");
  static const std::regex kGrowth(
      R"([.>](push_back|emplace_back|emplace|insert|append|resize|assign)\s*\()");
  static const std::regex kThrow(R"(\bthrow\b)");
  static const std::regex kLock(
      R"(\bMutexLock\b|\block_guard\b|\bunique_lock\b|\bscoped_lock\b|[.>](Lock|lock)\s*\()");
  static const std::regex kReserve(R"(\breserve\s*\()");
  static const std::regex kCheckedMath(R"(\bChecked(Add|Mul|Sub)\s*[<(])");
  // Sized sinks (taint gate, DESIGN.md §5h): size-taking memory operations.
  static const std::regex kSizedCall(
      R"([.>](resize|reserve|assign)\s*\(|\b(memcpy|memmove|memset|strncpy)\s*\()");
  static const std::regex kNewArray(R"(\bnew\s+[A-Za-z_][\w:<> ]*\[)");
  // Subscript whose index mixes two identifiers (`buf[a + b]`): an
  // unchecked-offset access. Plain `buf[i]` and literal offsets are not
  // sinks — the gate is a tripwire for computed offsets, not an index proof.
  static const std::regex kIndexArith(
      R"(\[[^\[\]]*[A-Za-z_][\w.]*(?:\(\s*\))?\s*[+*]\s*[A-Za-z_][^\[\]]*\])");
  static const std::regex kCall(R"(((?:[A-Za-z_]\w*::)*~?[A-Za-z_]\w*)\s*\()");
  static const std::set<std::string> kKeywords = {
      "if",      "for",     "while",    "switch",  "return", "catch",
      "sizeof",  "alignof", "decltype", "noexcept", "alignas", "new",
      "delete",  "static_assert", "defined", "assert", "throw"};

  const std::set<std::string> fn_params = FunctionTypedParams(fn->params);

  bool in_static_stmt = false;
  for (const BodyLine& bl : body) {
    const std::string& text = bl.text;
    if (std::regex_search(text, kReserve)) fn->has_reserve = true;
    if (std::regex_search(text, kCheckedMath)) {
      fn->has_checked_math = true;
      fn->has_limit_guard = true;
    }
    if (!fn->has_limit_guard && HasLimitComparison(text)) {
      fn->has_limit_guard = true;
    }

    // Statements starting with `static` are one-time initialization (the
    // DefaultCounter idiom): no facts, no call edges, until the ';'.
    bool skip = in_static_stmt;
    if (!skip) {
      const std::string_view t = Trim(text);
      if (t.substr(0, 6) == "static" &&
          (t.size() == 6 || !IsIdentChar(t[6]))) {
        skip = true;
        in_static_stmt = true;
      }
    }
    if (in_static_stmt && text.find(';') != std::string::npos) {
      in_static_stmt = false;
    }
    if (skip) continue;

    std::smatch m;
    if (std::regex_search(text, m, kAlloc)) {
      fn->facts.push_back({FactKind::kAlloc, bl.line, m[0]});
    }
    if (std::regex_search(text, m, kGrowth)) {
      fn->facts.push_back({FactKind::kGrowth, bl.line, m[1]});
    }
    if (std::regex_search(text, m, kThrow)) {
      fn->facts.push_back({FactKind::kThrow, bl.line, "throw"});
    }
    if (std::regex_search(text, m, kLock)) {
      fn->facts.push_back(
          {FactKind::kLock, bl.line,
           m[1].matched ? m[1].str() : m[0].str()});
    }
    // Sized sinks and their size-expression arithmetic. The size expression
    // is approximated as the rest of the line up to the matching ')'/']' —
    // the witness is the sink itself, not a parse of the argument.
    const auto arg_text = [&text](std::size_t from, char open, char close) {
      int depth = 1;
      std::size_t end = from;
      for (; end < text.size() && depth > 0; ++end) {
        if (text[end] == open) ++depth;
        if (text[end] == close) --depth;
      }
      return text.substr(from, end - from);
    };
    if (std::regex_search(text, m, kSizedCall)) {
      const std::string token = m[1].matched ? m[1].str() : m[2].str();
      const std::size_t after =
          static_cast<std::size_t>(m.position(0) + m.length(0));
      const std::string args = arg_text(after, '(', ')');
      const bool arith = HasIdentArith(args);
      // A size expression that is a plain sizeof (the double<->uint64
      // bit-cast idiom, `memcpy(&bits, &v, sizeof(bits))`) is statically
      // sized — nothing untrusted can steer it. `n * sizeof(T)` still has
      // identifier arithmetic and stays a sink.
      if (args.find("sizeof") == std::string::npos || arith) {
        fn->facts.push_back({FactKind::kSizedSink, bl.line, token});
        if (arith) {
          fn->facts.push_back({FactKind::kSizeArith, bl.line, token});
        }
      }
    }
    if (std::regex_search(text, m, kNewArray)) {
      fn->facts.push_back({FactKind::kSizedSink, bl.line, "new[]"});
      const std::size_t after =
          static_cast<std::size_t>(m.position(0) + m.length(0));
      if (HasIdentArith(arg_text(after, '[', ']'))) {
        fn->facts.push_back({FactKind::kSizeArith, bl.line, "new[]"});
      }
    }
    if (!std::regex_search(text, m, kSizedCall) &&
        !std::regex_search(text, m, kNewArray) &&
        std::regex_search(text, m, kIndexArith)) {
      fn->facts.push_back({FactKind::kSizedSink, bl.line, "operator[]"});
    }
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1];
      if (kKeywords.count(name) != 0) continue;
      if (fn_params.count(name) != 0) {
        fn->facts.push_back({FactKind::kDispatch, bl.line, name});
        continue;
      }
      // A receiver (`x.f(` / `p->f(`) marks a member call; only direct
      // (receiver-less) calls participate in recursion detection.
      std::size_t before = static_cast<std::size_t>(it->position(1));
      while (before > 0 && text[before - 1] == ' ') --before;
      const bool member =
          before > 0 && (text[before - 1] == '.' || text[before - 1] == '>');
      fn->calls.push_back({name, bl.line, member});
    }
  }
}

}  // namespace

const char* FactKindName(FactKind kind) {
  switch (kind) {
    case FactKind::kAlloc: return "alloc";
    case FactKind::kGrowth: return "growth";
    case FactKind::kThrow: return "throw";
    case FactKind::kLock: return "lock";
    case FactKind::kDispatch: return "dispatch";
    case FactKind::kSizedSink: return "sized_sink";
    case FactKind::kSizeArith: return "size_arith";
  }
  return "unknown";
}

std::vector<FunctionInfo> ExtractFunctions(const lint::SourceFile& file) {
  std::vector<FunctionInfo> out;
  std::vector<Scope> scopes;
  std::string pending;
  std::vector<std::size_t> pending_line;
  int pending_paren = 0;
  int current_fn = -1;  // innermost open function, or -1
  std::vector<BodyLine> body;  // accumulated body of current_fn

  const auto clear_pending = [&] {
    pending.clear();
    pending_line.clear();
    pending_paren = 0;
  };
  const auto body_append = [&](char c, std::size_t line1) {
    if (body.empty() || body.back().line != line1) {
      body.push_back({line1, std::string()});
    }
    body.back().text.push_back(c);
  };
  const auto finalize_fn = [&](std::size_t line1) {
    FunctionInfo& fn = out[static_cast<std::size_t>(current_fn)];
    fn.body_end = line1;
    ScanBody(body, &fn);
    body.clear();
    current_fn = -1;
    // A function cannot lexically nest in another (lambdas never open a
    // kFunction scope), so after the pop no enclosing function resumes.
  };

  bool prev_line_continued = false;  // directive continuation via '\'
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    const std::size_t line1 = i + 1;
    if (prev_line_continued || IsDirectiveStart(line)) {
      const std::string_view t = Trim(line);
      prev_line_continued = !t.empty() && t.back() == '\\';
      continue;
    }
    for (char c : line) {
      if (c == '{') {
        if (current_fn >= 0) {
          body_append(c, line1);
          scopes.push_back({Scope::kOther, "", -1});
          continue;
        }
        HeadClass head = ClassifyHead(pending, pending_line);
        clear_pending();
        Scope s;
        s.kind = head.kind;
        s.name = head.name;
        if (head.kind == Scope::kFunction) {
          FunctionInfo fn;
          fn.file = file.path;
          fn.line = head.name_line != 0 ? head.name_line : line1;
          fn.params = head.params;
          fn.hot = head.hot;
          fn.cold = head.cold;
          fn.taint_source = head.taint_source;
          fn.taint_barrier = head.taint_barrier;
          fn.qualified.clear();
          for (const Scope& sc : scopes) {
            if ((sc.kind == Scope::kNamespace || sc.kind == Scope::kClass) &&
                !sc.name.empty()) {
              fn.qualified += sc.name;
              fn.qualified += "::";
            }
          }
          fn.qualified += head.name;
          const std::size_t sep = head.name.rfind(':');
          fn.name = sep == std::string::npos ? head.name
                                             : head.name.substr(sep + 1);
          out.push_back(std::move(fn));
          s.function = static_cast<int>(out.size()) - 1;
          current_fn = s.function;
          body.clear();
        }
        scopes.push_back(std::move(s));
      } else if (c == '}') {
        if (!scopes.empty()) {
          const Scope top = scopes.back();
          scopes.pop_back();
          if (top.kind == Scope::kFunction) {
            finalize_fn(line1);
          } else if (current_fn >= 0) {
            body_append(c, line1);
          }
        }
        clear_pending();
      } else if (current_fn >= 0) {
        body_append(c, line1);
      } else if (c == ';' && pending_paren == 0) {
        clear_pending();
      } else {
        if (c == '(') ++pending_paren;
        if (c == ')' && pending_paren > 0) --pending_paren;
        pending.push_back(c);
        pending_line.push_back(line1);
      }
    }
    if (current_fn < 0 && !pending.empty() && pending.back() != ' ') {
      pending.push_back(' ');
      pending_line.push_back(line1);
    }
  }
  return out;
}

std::vector<std::string> VirtualMethodNames(const lint::SourceFile& file) {
  std::vector<std::string> out;
  static const std::regex kVirtual(R"(\bvirtual\b)");
  static const std::regex kName(R"((~?[A-Za-z_]\w*)\s*\()");
  for (std::size_t i = 0; i < file.code.size(); ++i) {
    if (!std::regex_search(file.code[i], kVirtual)) continue;
    // The method name is the identifier before the first '(' on this line or,
    // for wrapped declarations, the next one.
    for (std::size_t j = i; j < file.code.size() && j <= i + 1; ++j) {
      std::smatch m;
      if (std::regex_search(file.code[j], m, kName)) {
        out.push_back(m[1]);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace callgraph
}  // namespace rdfcube
