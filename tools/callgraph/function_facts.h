// Function-level fact extraction for the cross-TU call-graph analyzer
// (rdfcube_callgraph, DESIGN.md §5g). Grows the shared tokenizer pass
// (tools/source_text.h) from line-class checks into a lexical *function*
// model: for every function definition in a stripped SourceFile we record
//
//   - its qualified name (enclosing namespaces/classes + the written name),
//   - the RDFCUBE_HOT / RDFCUBE_COLD annotation on its header (base/hot.h),
//   - its call sites (identifier-before-'(' tokens, keyword-filtered),
//   - per-body facts:
//       alloc     explicit heap allocation: `new`, malloc/calloc/realloc/
//                 strdup, make_unique/make_shared, std::to_string
//       growth    container growth (push_back/emplace/insert/resize/append/
//                 assign/operator+=) in a body with no reserve() call —
//                 "unreserved growth"; a body that reserves is exempt
//       throw     a `throw` expression
//       lock      mutex acquisition: MutexLock, std::lock_guard/unique_lock/
//                 scoped_lock, or a .Lock()/.lock() call
//       dispatch  a call through a std::function-typed parameter (virtual
//                 dispatch is resolved at link time in callgraph.h, where the
//                 corpus-wide set of virtual method names is known)
//       sized_sink  a size-taking memory operation: .resize()/.reserve()/
//                 .assign(), new T[n], memcpy/memmove/memset/strncpy, or a
//                 subscript whose index mixes two identifiers (`buf[a + b]`).
//                 Feeding one from untrusted input requires a visible bounds
//                 guard (the taint gate, DESIGN.md §5h).
//       size_arith  a sized sink whose size expression itself contains
//                 identifier-on-identifier `+`/`*` arithmetic (`resize(a*b)`)
//                 — overflow-prone; the sanctioned form in tainted code is
//                 util/safe_math CheckedAdd/CheckedMul.
//       blocking  a thread-parking call (sleep_for/sleep_until/usleep/
//                 nanosleep, ::poll/select/epoll_wait) — the lexical seeds
//                 of the blocking-under-lock gate (DESIGN.md §5i); most
//                 blocking entry points are instead annotated
//                 RDFCUBE_BLOCKING (base/blocking.h) on their definitions.
//
// Lock-scope dataflow (DESIGN.md §5i): the extractor additionally tracks
// which `MutexLock` RAII scopes are open at every fact and call site. Each
// BodyFact/CallSite carries `held` — the raw lock expressions (e.g. "mu_",
// "s->a_") held at that point — and each function records its MutexLock
// acquisition sites (with the locks held *at* each acquisition: the raw
// material of the lock-order graph), its RDFCUBE_REQUIRES-transferred locks
// (held across the whole body), and its function-local `Mutex` variables.
// Expressions stay raw here; tools/callgraph/callgraph.cc resolves them to
// corpus-wide Mutex member identities. Two sanctioned idioms are built in:
//   - `lock.Wait(cv)` / `lock.WaitWithDeadline(cv, d)` on an active
//     MutexLock excludes *that* lock's mutex from the site's held set (the
//     wait releases it); waiting while a different lock stays held is not
//     exempt.
//   - A MutexLock declaration's own `lock` fact sees only the *outer* locks
//     (strictly-before position), so single-lock scopes have empty held.
//
// Alongside the facts, each function records header annotations
// (RDFCUBE_HOT/RDFCUBE_COLD from base/hot.h, RDFCUBE_TAINT_SOURCE/
// RDFCUBE_TAINT_BARRIER from base/untrusted.h) and two body-wide sanitizer
// bits consumed by the taint gate:
//   has_limit_guard   some line compares against a limit-shaped expression
//                     (a kNamedConstant, sizeof, .size()/.length()/
//                     Remaining(), or an identifier containing max/limit) —
//                     the lexical signature of a bounds check — or calls
//                     CheckedAdd/CheckedMul.
//   has_checked_math  the body calls util/safe_math CheckedAdd/CheckedMul/
//                     CheckedSub (exempts size_arith findings).
//
// Deliberate lexical semantics (documented limits, chosen so the gate is
// satisfiable on idiomatic code):
//   - Statements beginning with `static` contribute no facts and no call
//     sites: the function-local `static obs::Counter& c = DefaultCounter(...)`
//     idiom (CLAUDE.md) is one-time initialization, not hot-path work.
//   - Lambda bodies are attributed to the enclosing function (a deadline
//     check lambda inside Export is Export's work).
//   - Preprocessor lines (including continuation lines) are invisible to the
//     scanner, so multi-line macro definitions cannot unbalance the brace
//     depth.
//   - Allocation hidden behind a constructor call (std::string copies, ...)
//     is not modeled; the gate is a tripwire for the explicit allocator
//     vocabulary above, not an escape analysis.

#ifndef RDFCUBE_TOOLS_CALLGRAPH_FUNCTION_FACTS_H_
#define RDFCUBE_TOOLS_CALLGRAPH_FUNCTION_FACTS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tools/source_text.h"

namespace rdfcube {
namespace callgraph {

/// \brief Kind of a per-body fact (see the file comment for the vocabulary).
enum class FactKind {
  kAlloc,
  kGrowth,
  kThrow,
  kLock,
  kDispatch,
  kSizedSink,
  kSizeArith,
  kBlocking,
};

/// Stable lowercase name of a FactKind ("alloc", "growth", ...).
const char* FactKindName(FactKind kind);

/// \brief One fact observed in a function body.
struct BodyFact {
  FactKind kind = FactKind::kAlloc;
  std::size_t line = 0;  ///< 1-based line of the fact.
  std::string detail;    ///< The token that matched, e.g. "push_back".
  std::vector<std::string> held;  ///< Raw lock exprs held at the fact.
};

/// \brief One call site: an identifier (possibly qualified) before a '('.
struct CallSite {
  std::string name;      ///< As written, e.g. "CoversRange" or "Status::OK".
  std::size_t line = 0;  ///< 1-based line of the call.
  bool member = false;   ///< Written with a receiver (`x.f(...)`/`p->f(...)`).
  std::vector<std::string> held;  ///< Raw lock exprs held at the call.
};

/// \brief One Mutex-typed data member: a corpus-wide lock identity that raw
/// held expressions resolve against (tools/callgraph/callgraph.cc).
struct MutexMember {
  std::string member;     ///< Member name as written, e.g. "mu_".
  std::string qualified;  ///< Scoped, e.g. "rdfcube::obs::Logger::mu_".
  std::string file;       ///< Root-relative path of the declaring header/TU.
  std::size_t line = 0;   ///< 1-based line of the member token.
};

/// \brief One MutexLock acquisition site inside a function body.
struct LockAcquisition {
  std::string expr;      ///< Lock expression, '&'-stripped: "mu_", "s->a_".
  std::size_t line = 0;  ///< 1-based line of the MutexLock declaration.
  std::vector<std::string> held;  ///< Raw lock exprs held *at* the decl —
                                  ///< each is a lock-order edge held→expr.
};

/// \brief One extracted function definition and its lexical facts.
struct FunctionInfo {
  std::string file;       ///< Root-relative path of the defining TU.
  std::size_t line = 0;   ///< 1-based line of the function name token.
  std::size_t body_end = 0;  ///< 1-based line of the closing brace.
  std::string name;       ///< Unqualified name, e.g. "Covers".
  std::string qualified;  ///< Scopes + written name, e.g.
                          ///< "rdfcube::util::BitVector::Covers".
  std::string params;     ///< Parameter-list text (single line, normalized).
  bool hot = false;       ///< Header carries RDFCUBE_HOT.
  bool cold = false;      ///< Header carries RDFCUBE_COLD.
  bool taint_source = false;   ///< Header carries RDFCUBE_TAINT_SOURCE.
  bool taint_barrier = false;  ///< Header carries RDFCUBE_TAINT_BARRIER.
  bool blocking = false;       ///< Header carries RDFCUBE_BLOCKING.
  bool has_reserve = false;  ///< Body calls reserve() (growth exemption).
  bool has_limit_guard = false;  ///< Body compares against a limit-shaped
                                 ///< expression (taint-gate sanitizer).
  bool has_checked_math = false;  ///< Body calls CheckedAdd/CheckedMul/...
  std::vector<BodyFact> facts;
  std::vector<CallSite> calls;
  /// Raw lock exprs from RDFCUBE_REQUIRES on the header: the caller
  /// transfers these held into the whole body (DESIGN.md §5i).
  std::vector<std::string> requires_locks;
  /// MutexLock acquisition sites, each with the locks held at its decl.
  std::vector<LockAcquisition> lock_acquisitions;
  /// Function-local `Mutex x;` variables (lock identities scoped to this
  /// function, e.g. TryParallelFor's error collector).
  std::vector<std::string> local_mutexes;
};

/// Extracts every function definition (with body) from the code view of
/// `file`. Declarations without bodies, `= default`/`= delete` functions and
/// aggregate initializers are skipped.
std::vector<FunctionInfo> ExtractFunctions(const lint::SourceFile& file);

/// As above; additionally appends every `Mutex`-typed data member declared
/// at class scope in `file` to `*mutexes` (the corpus-wide lock identities
/// the lock-order graph is built over).
std::vector<FunctionInfo> ExtractFunctions(const lint::SourceFile& file,
                                           std::vector<MutexMember>* mutexes);

/// Names declared `virtual` anywhere in `file` (methods a call could
/// dynamically dispatch to). Unqualified.
std::vector<std::string> VirtualMethodNames(const lint::SourceFile& file);

}  // namespace callgraph
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_CALLGRAPH_FUNCTION_FACTS_H_
