// rdfcube_callgraph: the cross-TU call-graph analyzer CLI (DESIGN.md §5g).
// Extracts every function definition under <root>/src through the shared
// tokenizer, links call sites across translation units, computes transitive
// fact summaries (alloc / lock / throw / recursion / virtual dispatch /
// taint), and evaluates the RDFCUBE_HOT purity gate and the untrusted-input
// taint gate (DESIGN.md §5h), and the lock-order gate (DESIGN.md §5i):
// the held-lock dataflow builds the global lock-order graph, proves it
// acyclic against tools/lock_order.txt, and bans blocking calls and
// callback dispatch while a Mutex is held.
//
// Usage: rdfcube_callgraph [root] [options]
//   --json=FILE          write the full graph as JSON ("-" = stdout)
//   --dot=FILE           write the graph as Graphviz DOT ("-" = stdout)
//   --hot-report=FILE    write hot_path_report.json ("-" = stdout)
//   --taint-report=FILE  write taint_report.json ("-" = stdout)
//   --lock-report=FILE   write lock_report.json ("-" = stdout)
//   --lock-dot=FILE      write the lock-order graph as Graphviz DOT
//   --format=sarif       print every gate violation (hot + taint + lock) as
//                        a SARIF 2.1.0 log on stdout (code-scanning UIs)
//   --reach=NAME         print why alloc/lock/throw facts reach the
//                        function(s) whose qualified name ends with NAME
//   --callers=NAME       print the direct callers of the function(s) NAME
// With no output option, prints a one-line summary.
// Exit status: 0 when all three gates are clean, 1 when the hot gate, the
// taint gate, or the lock gate found violations, 2 on usage error.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/callgraph/callgraph.h"
#include "tools/lint_checks.h"
#include "tools/source_text.h"

namespace {

namespace cg = rdfcube::callgraph;
namespace fs = std::filesystem;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [repo-root] [--json=FILE] [--dot=FILE] "
               "[--hot-report=FILE] [--taint-report=FILE] "
               "[--lock-report=FILE] [--lock-dot=FILE] [--format=sarif] "
               "[--reach=NAME] [--callers=NAME]\n",
               argv0);
  return 2;
}

// Writes `content` to `path`, or stdout when path is "-". Returns false on
// I/O failure.
bool WriteOut(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::fputs(content.c_str(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

std::vector<rdfcube::lint::SourceFile> LoadSrc(const std::string& root) {
  std::vector<rdfcube::lint::SourceFile> corpus;
  std::vector<std::string> paths;
  const fs::path base = fs::path(root) / "src";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(base, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
    paths.push_back(fs::relative(it->path(), root).generic_string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& rel : paths) {
    corpus.push_back(rdfcube::lint::LoadSource(fs::path(root) / rel, rel));
  }
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path, dot_path, report_path, taint_path, lock_path,
      lock_dot_path, reach_name, callers_name;
  std::string format = "text";
  bool root_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    }
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
    } else if (arg.rfind("--hot-report=", 0) == 0) {
      report_path = arg.substr(13);
    } else if (arg.rfind("--taint-report=", 0) == 0) {
      taint_path = arg.substr(15);
    } else if (arg.rfind("--lock-report=", 0) == 0) {
      lock_path = arg.substr(14);
    } else if (arg.rfind("--lock-dot=", 0) == 0) {
      lock_dot_path = arg.substr(11);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif") return Usage(argv[0]);
    } else if (arg.rfind("--reach=", 0) == 0) {
      reach_name = arg.substr(8);
    } else if (arg.rfind("--callers=", 0) == 0) {
      callers_name = arg.substr(10);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return Usage(argv[0]);
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::error_code ec;
  if (!fs::is_directory(fs::path(root) / "src", ec)) {
    std::fprintf(stderr, "%s: no src/ directory under '%s'\n", argv[0],
                 root.c_str());
    return 2;
  }

  const std::vector<rdfcube::lint::SourceFile> corpus = LoadSrc(root);
  const cg::CallGraph graph = cg::BuildCallGraph(corpus);
  const std::vector<cg::FunctionSummary> summaries =
      cg::ComputeSummaries(graph);
  const std::vector<cg::HotPathViolation> violations =
      cg::EvaluateHotGate(graph, summaries);
  const std::vector<cg::TaintViolation> taint_violations =
      cg::EvaluateTaintGate(graph, summaries);
  const cg::LockGraph lock_graph = cg::BuildLockGraph(graph);
  const cg::LockOrderManifest manifest = cg::LoadLockOrderManifest(
      (fs::path(root) / "tools" / "lock_order.txt").string());
  const std::vector<cg::LockViolation> lock_violations =
      cg::EvaluateLockGate(graph, summaries, lock_graph, manifest);

  if (!json_path.empty() &&
      !WriteOut(json_path, cg::GraphToJson(graph, summaries))) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0], json_path.c_str());
    return 2;
  }
  if (!dot_path.empty() &&
      !WriteOut(dot_path, cg::GraphToDot(graph, summaries))) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0], dot_path.c_str());
    return 2;
  }
  if (!report_path.empty() &&
      !WriteOut(report_path,
                cg::HotPathReportJson(graph, summaries, violations))) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                 report_path.c_str());
    return 2;
  }
  if (!taint_path.empty() &&
      !WriteOut(taint_path,
                cg::TaintReportJson(graph, summaries, taint_violations))) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0], taint_path.c_str());
    return 2;
  }

  if (!lock_path.empty() &&
      !WriteOut(lock_path, cg::LockReportJson(graph, lock_graph, manifest,
                                              lock_violations))) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0], lock_path.c_str());
    return 2;
  }
  if (!lock_dot_path.empty() &&
      !WriteOut(lock_dot_path, cg::LockGraphToDot(lock_graph))) {
    std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                 lock_dot_path.c_str());
    return 2;
  }

  if (!reach_name.empty()) {
    const std::vector<int> ids = graph.FindBySuffix(reach_name);
    if (ids.empty()) {
      std::fprintf(stderr, "%s: no function matches '%s'\n", argv[0],
                   reach_name.c_str());
    }
    for (const int id : ids) {
      const std::size_t u = static_cast<std::size_t>(id);
      std::printf("%s (%s:%zu)%s%s%s%s\n",
                  graph.functions[u].qualified.c_str(),
                  graph.functions[u].file.c_str(), graph.functions[u].line,
                  graph.functions[u].hot ? " [hot]" : "",
                  graph.functions[u].cold ? " [cold]" : "",
                  graph.functions[u].taint_source ? " [taint-source]" : "",
                  graph.functions[u].taint_barrier ? " [taint-barrier]" : "");
      for (const cg::FactKind kind :
           {cg::FactKind::kAlloc, cg::FactKind::kLock, cg::FactKind::kThrow}) {
        const std::string chain =
            cg::WitnessChain(graph, summaries, id, kind);
        if (chain.empty()) {
          std::printf("  %s: clean\n", cg::FactKindName(kind));
        } else {
          std::printf("  %s: %s\n", cg::FactKindName(kind), chain.c_str());
        }
      }
      if (summaries[u].taint.tainted) {
        const cg::FunctionInfo& src = graph.functions[static_cast<std::size_t>(
            summaries[u].taint.source)];
        std::printf("  tainted: from %s (%s:%zu)\n", src.qualified.c_str(),
                    src.file.c_str(), src.line);
      }
      if (summaries[u].recursive) {
        std::printf("  recursive: cycle of %zu function(s)\n",
                    summaries[u].cycle.size());
      }
    }
  }

  if (!callers_name.empty()) {
    const std::vector<int> ids = graph.FindBySuffix(callers_name);
    if (ids.empty()) {
      std::fprintf(stderr, "%s: no function matches '%s'\n", argv[0],
                   callers_name.c_str());
    }
    for (const int id : ids) {
      std::printf("callers of %s:\n",
                  graph.functions[static_cast<std::size_t>(id)]
                      .qualified.c_str());
      for (const cg::Edge& e : graph.edges) {
        if (e.callee != id) continue;
        const cg::FunctionInfo& c =
            graph.functions[static_cast<std::size_t>(e.caller)];
        std::printf("  %s (%s:%zu)\n", c.qualified.c_str(), c.file.c_str(),
                    e.line);
      }
    }
  }

  if (format == "sarif") {
    // Reuse the lint SARIF emitter: both gates' findings become Violations.
    std::vector<rdfcube::lint::Violation> all;
    for (const cg::HotPathViolation& v : violations) {
      const cg::FunctionInfo& fn =
          graph.functions[static_cast<std::size_t>(v.fn)];
      all.push_back({v.kind, fn.file, fn.line, v.witness});
    }
    for (const cg::TaintViolation& v : taint_violations) {
      const cg::FunctionInfo& fn =
          graph.functions[static_cast<std::size_t>(v.fn)];
      all.push_back({v.kind, fn.file, v.line, v.witness});
    }
    for (const cg::LockViolation& v : lock_violations) {
      all.push_back({v.kind, v.file, v.line, v.witness});
    }
    std::fputs(rdfcube::lint::ViolationsToSarif(all).c_str(), stdout);
  } else if (json_path.empty() && dot_path.empty() && report_path.empty() &&
             taint_path.empty() && lock_path.empty() &&
             lock_dot_path.empty() && reach_name.empty() &&
             callers_name.empty()) {
    std::size_t hot = 0, cold = 0, sources = 0, tainted = 0;
    for (std::size_t i = 0; i < graph.functions.size(); ++i) {
      if (graph.functions[i].hot) ++hot;
      if (graph.functions[i].cold) ++cold;
      if (graph.functions[i].taint_source) ++sources;
      if (summaries[i].taint.tainted) ++tainted;
    }
    std::printf(
        "rdfcube_callgraph: %zu functions, %zu edges, %zu hot, %zu cold, "
        "%zu taint source(s), %zu tainted, %zu lock(s), %zu lock-order "
        "edge(s), %zu hot-path violation(s), %zu taint violation(s), "
        "%zu lock violation(s)\n",
        graph.functions.size(), graph.edges.size(), hot, cold, sources,
        tainted, lock_graph.locks.size(), lock_graph.edges.size(),
        violations.size(), taint_violations.size(), lock_violations.size());
  }

  for (const cg::HotPathViolation& v : violations) {
    std::fprintf(stderr, "[%s] %s\n", v.kind.c_str(), v.witness.c_str());
  }
  for (const cg::TaintViolation& v : taint_violations) {
    std::fprintf(stderr, "[%s] %s\n", v.kind.c_str(), v.witness.c_str());
  }
  for (const cg::LockViolation& v : lock_violations) {
    std::fprintf(stderr, "[%s] %s\n", v.kind.c_str(), v.witness.c_str());
  }
  return violations.empty() && taint_violations.empty() &&
                 lock_violations.empty()
             ? 0
             : 1;
}
