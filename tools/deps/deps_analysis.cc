#include "tools/deps/deps_analysis.h"

#include <algorithm>
#include <filesystem>
#include <regex>
#include <set>
#include <tuple>

#include "tools/source_text.h"

namespace rdfcube {
namespace deps {

namespace {

namespace fs = std::filesystem;

bool IncludeSuppressed(const Include& inc, const std::string& check) {
  return inc.raw_line.find("lint:allow(" + check + ")") != std::string::npos;
}

// --- layer-dag ---------------------------------------------------------------

void CheckLayerDag(const IncludeGraph& graph, const LayerManifest& manifest,
                   std::vector<lint::Violation>* out) {
  static const std::string kCheck = "layer-dag";
  // Every module that owns analyzed files must be declared.
  std::set<std::string> reported_modules;
  for (const FileNode& node : graph.files) {
    if (manifest.Find(node.module) == nullptr &&
        reported_modules.insert(node.module).second) {
      out->push_back({kCheck, node.path, 0,
                      "module '" + node.module +
                          "' is not declared in tools/layers.txt"});
    }
  }
  // Every cross-module include must be a declared edge. Reported per include
  // site so one offending header migration shows every place to fix.
  for (const FileNode& node : graph.files) {
    if (manifest.Find(node.module) == nullptr) continue;  // reported above
    for (const Include& inc : node.includes) {
      if (!inc.resolved) continue;
      const std::string to = ModuleOf(inc.target);
      if (to == node.module) continue;
      if (manifest.Allows(node.module, to)) continue;
      if (IncludeSuppressed(inc, kCheck)) continue;
      if (manifest.Find(to) == nullptr) {
        out->push_back({kCheck, node.path, inc.line,
                        "include of '" + inc.written + "' reaches module '" +
                            to + "', which tools/layers.txt does not declare"});
      } else {
        out->push_back(
            {kCheck, node.path, inc.line,
             "undeclared dependency: module '" + node.module +
                 "' -> '" + to + "' (include of '" + inc.written +
                 "'); declare it in tools/layers.txt or break the edge"});
      }
    }
  }
}

// --- include-cycle -----------------------------------------------------------

void CheckIncludeCycle(const IncludeGraph& graph,
                       std::vector<lint::Violation>* out) {
  static const std::string kCheck = "include-cycle";
  const auto cycle = FindIncludeCycle(graph);
  if (!cycle.has_value()) return;
  std::string path;
  for (std::size_t i = 0; i < cycle->size(); ++i) {
    if (i != 0) path += " -> ";
    path += (*cycle)[i];
  }
  out->push_back({kCheck, cycle->front(), 0,
                  "file-level include cycle: " + path});
}

// --- iwyu-direct -------------------------------------------------------------

void CheckIwyuDirect(const fs::path& root, const IncludeGraph& graph,
                     std::vector<lint::Violation>* out) {
  static const std::string kCheck = "iwyu-direct";
  // Module namespaces are exactly the src/ subdirectories; a namespace that
  // matches no module directory (vocab, relvocab, std, ...) is not checked.
  std::set<std::string> modules;
  {
    std::error_code ec;
    for (fs::directory_iterator it(root / "src", ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory()) {
        modules.insert(it->path().filename().string());
      }
    }
  }
  modules.erase("rdfcube");  // the umbrella deliberately re-exports everything

  for (const FileNode& node : graph.files) {
    if (node.path.rfind("src/", 0) != 0) continue;
    if (node.module == "rdfcube") continue;
    const lint::SourceFile src = lint::LoadSource(root / node.path, node.path);
    // Direct includes, by module.
    std::set<std::string> included;
    for (const Include& inc : node.includes) {
      if (inc.resolved) included.insert(ModuleOf(inc.target));
    }
    for (const std::string& mod : modules) {
      if (mod == node.module || included.count(mod) != 0) continue;
      const std::regex use(R"(\b)" + mod + R"(::)");
      const std::regex decl(R"(\bnamespace\s+)" + mod + R"(\b)");
      std::size_t use_line = 0;  // 1-based; 0 = no use found
      bool declares = false;
      for (std::size_t i = 0; i < src.code.size(); ++i) {
        if (std::regex_search(src.code[i], decl)) {
          declares = true;  // forward declaration; include not required
          break;
        }
        if (use_line == 0 && std::regex_search(src.code[i], use) &&
            !lint::LineSuppressed(src, i, kCheck)) {
          use_line = i + 1;
        }
      }
      if (declares || use_line == 0) continue;
      out->push_back(
          {kCheck, node.path, use_line,
           "uses " + mod + ":: but does not directly include any " + mod +
               "/ header (relies on transitive includes)"});
    }
  }
}

}  // namespace

DepsReport AnalyzeDeps(const std::string& root, const DepsOptions& options) {
  DepsReport report;
  const fs::path r(root);
  report.graph = BuildIncludeGraph(r, options.walk_roots);

  const std::string manifest_path = (r / options.manifest_rel).string();
  std::error_code ec;
  if (fs::is_regular_file(r / options.manifest_rel, ec)) {
    Result<LayerManifest> manifest = LoadLayerManifest(manifest_path);
    if (manifest.ok()) {
      report.manifest_loaded = true;
      CheckLayerDag(report.graph, manifest.value(), &report.violations);
    } else {
      report.violations.push_back(
          {"layer-dag", options.manifest_rel, 0,
           manifest.status().message()});
    }
  } else if (options.require_manifest) {
    report.violations.push_back(
        {"layer-dag", options.manifest_rel, 0,
         "layer manifest is missing (the architecture gate requires it)"});
  }

  CheckIncludeCycle(report.graph, &report.violations);
  CheckIwyuDirect(r, report.graph, &report.violations);

  std::sort(report.violations.begin(), report.violations.end(),
            [](const lint::Violation& a, const lint::Violation& b) {
              return std::tie(a.file, a.line, a.check) <
                     std::tie(b.file, b.line, b.check);
            });
  return report;
}

}  // namespace deps
}  // namespace rdfcube
