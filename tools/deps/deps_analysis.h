// The architecture gate: checks the extracted include graph
// (include_graph.h) against the declared layer DAG (layer_manifest.h) and
// reports findings as lint violations, so rdfcube_lint and rdfcube_deps share
// one implementation and one suppression mechanism.
//
// Checks (names double as `lint:allow(<name>)` suppressions):
//   layer-dag      a module-level include edge not declared in
//                  tools/layers.txt, a module missing from the manifest, or
//                  a manifest that fails to parse (undeclared dep, declared
//                  cycle). Suppressable on the offending #include line.
//   include-cycle  a cycle in the file-level include graph. Whole-graph
//                  property: not suppressable.
//   iwyu-direct    a src/ file uses a module's namespace (e.g. `obs::`,
//                  `qb::`) without directly including any header of that
//                  module — it compiles only through transitive includes,
//                  which is exactly the hidden coupling the gate exists to
//                  surface. Only namespaces matching an existing src/<module>
//                  directory are checked; files forward-declaring
//                  `namespace <module>` are exempt for that module.
//
// When the manifest is absent the layer-dag check is skipped (a tree opts
// into layering by declaring tools/layers.txt); rdfcube_deps passes
// require_manifest so the real gate can never silently lose its manifest.

#ifndef RDFCUBE_TOOLS_DEPS_DEPS_ANALYSIS_H_
#define RDFCUBE_TOOLS_DEPS_DEPS_ANALYSIS_H_

#include <string>
#include <vector>

#include "tools/deps/include_graph.h"
#include "tools/deps/layer_manifest.h"
#include "tools/lint_checks.h"

namespace rdfcube {
namespace deps {

/// \brief Options for AnalyzeDeps.
struct DepsOptions {
  /// Report a missing/unreadable manifest as a violation instead of
  /// skipping the layer checks.
  bool require_manifest = false;
  /// Manifest path relative to the analysis root.
  std::string manifest_rel = "tools/layers.txt";
  /// Directory roots to extract the include graph from.
  std::vector<std::string> walk_roots = {"src", "tools", "bench"};
};

/// \brief Everything the gate produced: the graph (for DOT/JSON export) and
/// the violations (for the lint report).
struct DepsReport {
  IncludeGraph graph;
  bool manifest_loaded = false;
  std::vector<lint::Violation> violations;
};

/// Runs the full architecture analysis over the tree rooted at `root`.
DepsReport AnalyzeDeps(const std::string& root, const DepsOptions& options);

}  // namespace deps
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_DEPS_DEPS_ANALYSIS_H_
