#include "tools/deps/include_graph.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/json_writer.h"
#include "tools/source_text.h"

namespace rdfcube {
namespace deps {

namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

}  // namespace

const FileNode* IncludeGraph::Find(const std::string& path) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), path,
      [](const FileNode& n, const std::string& p) { return n.path < p; });
  return it != files.end() && it->path == path ? &*it : nullptr;
}

std::string ModuleOf(const std::string& rel_path) {
  std::size_t start = 0;
  std::size_t slash = rel_path.find('/');
  if (slash == std::string::npos) return rel_path;
  std::string first = rel_path.substr(0, slash);
  if (first == "src") {
    start = slash + 1;
    slash = rel_path.find('/', start);
    if (slash == std::string::npos) return "src";
    return rel_path.substr(start, slash - start);
  }
  return first;
}

std::vector<Include> ExtractIncludes(const std::string& content) {
  // The tokenizer keeps directive header-names visible in the code view while
  // blanking ordinary string literals and comments, so a `#include` inside
  // either can never match here.
  static const std::regex kInclude(R"re(^\s*#\s*include\s+"([^"]+)")re");
  std::vector<Include> out;
  const lint::SourceFile src = lint::StripSource(content, "");
  for (std::size_t i = 0; i < src.code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(src.code[i], m, kInclude)) {
      Include inc;
      inc.line = i + 1;
      inc.written = m[1];
      inc.raw_line = src.raw[i];
      out.push_back(std::move(inc));
    }
  }
  return out;
}

IncludeGraph BuildIncludeGraph(const fs::path& root,
                               const std::vector<std::string>& walk_roots) {
  IncludeGraph graph;
  for (const std::string& sub : walk_roots) {
    const fs::path base = root / sub;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (fs::recursive_directory_iterator it(base, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file() || !HasSourceExtension(it->path())) continue;
      FileNode node;
      node.path = fs::relative(it->path(), root).generic_string();
      node.module = ModuleOf(node.path);
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      node.includes = ExtractIncludes(buf.str());
      graph.files.push_back(std::move(node));
    }
  }
  std::sort(graph.files.begin(), graph.files.end(),
            [](const FileNode& a, const FileNode& b) { return a.path < b.path; });
  // Resolve each include against <root>/src then <root>.
  for (FileNode& node : graph.files) {
    for (Include& inc : node.includes) {
      std::error_code ec;
      if (fs::is_regular_file(root / "src" / inc.written, ec)) {
        inc.target = "src/" + inc.written;
        inc.resolved = true;
      } else if (fs::is_regular_file(root / inc.written, ec)) {
        inc.target = inc.written;
        inc.resolved = true;
      }
    }
  }
  return graph;
}

std::vector<ModuleEdge> ModuleEdges(const IncludeGraph& graph) {
  std::map<std::pair<std::string, std::string>, ModuleEdge> edges;
  for (const FileNode& node : graph.files) {
    for (const Include& inc : node.includes) {
      if (!inc.resolved) continue;
      const std::string to = ModuleOf(inc.target);
      if (to == node.module) continue;
      auto key = std::make_pair(node.module, to);
      auto it = edges.find(key);
      if (it == edges.end()) {
        ModuleEdge e;
        e.from = node.module;
        e.to = to;
        e.file = node.path;
        e.line = inc.line;
        e.count = 1;
        edges.emplace(std::move(key), std::move(e));
      } else {
        ++it->second.count;
      }
    }
  }
  std::vector<ModuleEdge> out;
  out.reserve(edges.size());
  for (auto& [key, edge] : edges) out.push_back(std::move(edge));
  return out;
}

namespace {

// Iterative DFS three-color cycle search over the file-level graph.
enum class Color : unsigned char { kWhite, kGray, kBlack };

}  // namespace

std::optional<std::vector<std::string>> FindIncludeCycle(
    const IncludeGraph& graph) {
  std::unordered_map<std::string, Color> color;
  std::unordered_map<std::string, std::string> parent;
  for (const FileNode& n : graph.files) color[n.path] = Color::kWhite;

  for (const FileNode& start : graph.files) {
    if (color[start.path] != Color::kWhite) continue;
    // Stack of (node, next-include-index).
    std::vector<std::pair<const FileNode*, std::size_t>> stack;
    stack.emplace_back(&start, 0);
    color[start.path] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx >= node->includes.size()) {
        color[node->path] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const Include& inc = node->includes[idx++];
      if (!inc.resolved) continue;
      const FileNode* next = graph.Find(inc.target);
      if (next == nullptr) continue;  // e.g. a resolved non-source file
      const Color c = color[next->path];
      if (c == Color::kGray) {
        // Back edge: the cycle is `next ... top-of-stack, next` — everything
        // on the stack from `next` upward is on the current DFS path.
        std::vector<std::string> cycle;
        auto from = std::find_if(
            stack.begin(), stack.end(),
            [&](const auto& entry) { return entry.first == next; });
        for (; from != stack.end(); ++from) {
          cycle.push_back(from->first->path);
        }
        cycle.push_back(next->path);
        return cycle;
      }
      if (c == Color::kWhite) {
        color[next->path] = Color::kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
  return std::nullopt;
}

std::string GraphToDot(const IncludeGraph& graph) {
  std::string out = "digraph rdfcube_modules {\n  rankdir=BT;\n";
  std::set<std::string> modules;
  for (const FileNode& n : graph.files) modules.insert(n.module);
  for (const std::string& m : modules) {
    out += "  \"" + m + "\";\n";
  }
  for (const ModuleEdge& e : ModuleEdges(graph)) {
    out += "  \"" + e.from + "\" -> \"" + e.to + "\" [label=\"" +
           std::to_string(e.count) + "\"];\n";
  }
  out += "}\n";
  return out;
}

std::string GraphToJson(const IncludeGraph& graph) {
  std::string out = "{\n  \"files\": [\n";
  for (std::size_t i = 0; i < graph.files.size(); ++i) {
    const FileNode& n = graph.files[i];
    out += "    {\"path\": ";
    obs::AppendJsonString(&out, n.path);
    out += ", \"module\": ";
    obs::AppendJsonString(&out, n.module);
    out += ", \"includes\": [";
    bool first = true;
    for (const Include& inc : n.includes) {
      if (!inc.resolved) continue;
      if (!first) out += ", ";
      first = false;
      obs::AppendJsonString(&out, inc.target);
    }
    out += "]}";
    if (i + 1 < graph.files.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n  \"modules\": [";
  std::set<std::string> modules;
  for (const FileNode& n : graph.files) modules.insert(n.module);
  bool first = true;
  for (const std::string& m : modules) {
    if (!first) out += ", ";
    first = false;
    obs::AppendJsonString(&out, m);
  }
  out += "],\n  \"module_edges\": [\n";
  const std::vector<ModuleEdge> edges = ModuleEdges(graph);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    out += "    {\"from\": ";
    obs::AppendJsonString(&out, edges[i].from);
    out += ", \"to\": ";
    obs::AppendJsonString(&out, edges[i].to);
    out += ", \"count\": " + std::to_string(edges[i].count) + "}";
    if (i + 1 < edges.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace deps
}  // namespace rdfcube
