// Include-graph extraction for the architecture gate (DESIGN.md §5f).
//
// Walks the analysis roots (src/, tools/, bench/ by default), extracts every
// quoted #include through the shared tokenizer (tools/source_text.h) — so
// includes mentioned in comments or string literals never become edges — and
// resolves each against the repo's two include bases (<root>/src for module
// headers, <root> for tools/tests headers). Angle-bracket includes are system
// headers and are ignored; quoted includes that resolve to neither base are
// recorded as unresolved and ignored by the structural checks.
//
// Includes under preprocessor conditionals are recorded unconditionally: the
// gate checks the over-approximated graph (every edge any configuration could
// take), which is the conservative direction for a layering proof.
//
// Module granularity: "src/util/fault.h" belongs to module "util";
// "tools/lint_checks.h" to "tools"; "bench/..." to "bench". A file directly
// under src/ (none today) would belong to module "src".

#ifndef RDFCUBE_TOOLS_DEPS_INCLUDE_GRAPH_H_
#define RDFCUBE_TOOLS_DEPS_INCLUDE_GRAPH_H_

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace rdfcube {
namespace deps {

/// \brief One quoted #include directive found in a file.
struct Include {
  std::size_t line = 0;  ///< 1-based line of the directive.
  std::string written;   ///< The include path as written, e.g. "util/fault.h".
  std::string target;    ///< Resolved root-relative path; empty if unresolved.
  bool resolved = false;
  std::string raw_line;  ///< Verbatim directive line (lint:allow lives here).
};

/// \brief One analyzed file and its outgoing includes.
struct FileNode {
  std::string path;    ///< Root-relative slash path.
  std::string module;  ///< See ModuleOf().
  std::vector<Include> includes;
};

/// \brief The extracted include graph over the analysis roots.
struct IncludeGraph {
  std::vector<FileNode> files;  ///< Sorted by path.

  /// Node for `path`, or nullptr when the path was not analyzed.
  const FileNode* Find(const std::string& path) const;
};

/// \brief One module-level dependency edge with a representative file:line.
struct ModuleEdge {
  std::string from;
  std::string to;
  std::string file;      ///< A file in `from` whose include witnesses the edge.
  std::size_t line = 0;  ///< Line of that include.
  std::size_t count = 0; ///< Number of file-level includes behind the edge.
};

/// Module of a root-relative path: second component under src/, first
/// component otherwise ("src/qb/x.h" -> "qb", "tools/deps/y.h" -> "tools").
std::string ModuleOf(const std::string& rel_path);

/// Extracts the quoted includes of one file from its content
/// (comment/string-aware; no resolution — `target` is left empty).
std::vector<Include> ExtractIncludes(const std::string& content);

/// Walks `walk_roots` under `root` and builds the resolved include graph.
IncludeGraph BuildIncludeGraph(const std::filesystem::path& root,
                               const std::vector<std::string>& walk_roots);

/// Deduplicated module-level edges (self-edges omitted), sorted by
/// (from, to), each carrying one representative include site.
std::vector<ModuleEdge> ModuleEdges(const IncludeGraph& graph);

/// Searches the file-level include graph for a cycle. Returns the cycle as
/// a path of root-relative files (first == last) or nullopt when acyclic.
std::optional<std::vector<std::string>> FindIncludeCycle(
    const IncludeGraph& graph);

/// Graphviz DOT rendering of the module-level graph (edge labels carry the
/// file-level include counts).
std::string GraphToDot(const IncludeGraph& graph);

/// JSON rendering: {"files": [{"path", "module", "includes": [...]}, ...],
/// "modules": [...], "module_edges": [{"from","to","count"}, ...]}.
std::string GraphToJson(const IncludeGraph& graph);

}  // namespace deps
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_DEPS_INCLUDE_GRAPH_H_
