#include "tools/deps/layer_manifest.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace rdfcube {
namespace deps {

namespace {

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool ValidModuleName(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')) {
      return false;
    }
  }
  return true;
}

}  // namespace

const LayerManifest::Module* LayerManifest::Find(
    const std::string& name) const {
  for (const Module& m : modules) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

bool LayerManifest::Allows(const std::string& from,
                           const std::string& to) const {
  if (from == to) return true;
  const Module* m = Find(from);
  if (m == nullptr) return false;
  if (m->wildcard) return true;
  return m->deps.count(to) != 0;
}

std::optional<std::vector<std::string>> FindManifestCycle(
    const LayerManifest& manifest) {
  // Wildcard modules get edges to every non-wildcard module: a declared
  // module depending back on a wildcard root must surface as a cycle.
  enum class Color : unsigned char { kWhite, kGray, kBlack };
  std::unordered_map<std::string, Color> color;
  for (const auto& m : manifest.modules) color[m.name] = Color::kWhite;

  std::vector<std::string> deps_of;
  auto edges = [&](const std::string& name) {
    std::vector<std::string> out;
    const LayerManifest::Module* m = manifest.Find(name);
    if (m == nullptr) return out;
    if (m->wildcard) {
      for (const auto& other : manifest.modules) {
        if (!other.wildcard && other.name != name) out.push_back(other.name);
      }
    } else {
      out.assign(m->deps.begin(), m->deps.end());
    }
    return out;
  };

  for (const auto& start : manifest.modules) {
    if (color[start.name] != Color::kWhite) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(start.name, 0);
    color[start.name] = Color::kGray;
    while (!stack.empty()) {
      auto& [name, idx] = stack.back();
      const std::vector<std::string> out = edges(name);
      if (idx >= out.size()) {
        color[name] = Color::kBlack;
        stack.pop_back();
        continue;
      }
      const std::string next = out[idx++];
      if (color.find(next) == color.end()) continue;  // undeclared: reported elsewhere
      if (color[next] == Color::kGray) {
        std::vector<std::string> cycle;
        auto from = std::find_if(
            stack.begin(), stack.end(),
            [&](const auto& entry) { return entry.first == next; });
        for (; from != stack.end(); ++from) cycle.push_back(from->first);
        cycle.push_back(next);
        return cycle;
      }
      if (color[next] == Color::kWhite) {
        color[next] = Color::kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
  return std::nullopt;
}

Result<LayerManifest> ParseLayerManifest(const std::string& content) {
  LayerManifest manifest;
  std::istringstream in(content);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("layers.txt:" + std::to_string(line_no) +
                                ": expected '<module>: <deps...>'");
    }
    LayerManifest::Module mod;
    mod.name = Trim(line.substr(0, colon));
    mod.line = line_no;
    if (!ValidModuleName(mod.name)) {
      return Status::ParseError("layers.txt:" + std::to_string(line_no) +
                                ": invalid module name '" + mod.name + "'");
    }
    if (manifest.Find(mod.name) != nullptr) {
      return Status::ParseError("layers.txt:" + std::to_string(line_no) +
                                ": duplicate declaration of '" + mod.name +
                                "'");
    }
    std::istringstream deps(line.substr(colon + 1));
    std::string dep;
    while (deps >> dep) {
      if (dep == "*") {
        if (mod.wildcard || !mod.deps.empty()) {
          return Status::ParseError(
              "layers.txt:" + std::to_string(line_no) +
              ": '*' must be the only dependency of '" + mod.name + "'");
        }
        mod.wildcard = true;
        continue;
      }
      if (mod.wildcard) {
        return Status::ParseError(
            "layers.txt:" + std::to_string(line_no) +
            ": '*' must be the only dependency of '" + mod.name + "'");
      }
      if (!ValidModuleName(dep)) {
        return Status::ParseError("layers.txt:" + std::to_string(line_no) +
                                  ": invalid dependency name '" + dep + "'");
      }
      if (dep == mod.name) {
        return Status::ParseError("layers.txt:" + std::to_string(line_no) +
                                  ": '" + mod.name + "' depends on itself");
      }
      mod.deps.insert(dep);
    }
    manifest.modules.push_back(std::move(mod));
  }
  // Every named dep must be declared.
  for (const auto& mod : manifest.modules) {
    for (const std::string& dep : mod.deps) {
      if (manifest.Find(dep) == nullptr) {
        return Status::ParseError(
            "layers.txt:" + std::to_string(mod.line) + ": '" + mod.name +
            "' depends on undeclared module '" + dep + "'");
      }
    }
  }
  if (auto cycle = FindManifestCycle(manifest)) {
    std::string path;
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      if (i != 0) path += " -> ";
      path += (*cycle)[i];
    }
    return Status::ParseError("layers.txt declares a cyclic layering: " +
                              path);
  }
  return manifest;
}

Result<LayerManifest> LoadLayerManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot read layer manifest: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseLayerManifest(buf.str());
}

}  // namespace deps
}  // namespace rdfcube
