// The declared layer DAG (tools/layers.txt) for the architecture gate
// (DESIGN.md §5f). The manifest is the single source of truth for which
// module-level dependencies are allowed; rdfcube_deps / rdfcube_lint fail on
// any extracted edge the manifest does not declare.
//
// Grammar (one declaration per line; '#' starts a comment):
//
//   <module>: <dep> <dep> ...   # module may include headers of the deps
//   <module>:                   # leaf module, no dependencies
//   <module>: *                 # application root (umbrella/tools/bench):
//                               # may depend on every declared module
//
// Rules enforced by ParseLayerManifest:
//   * every named dep must itself be declared (no dangling layers);
//   * no duplicate declarations;
//   * the declared graph must be a DAG (wildcard modules depend on every
//     non-wildcard module for the purpose of the cycle check; edges between
//     two wildcard application roots are allowed but not cycle-checked —
//     application roots are not linkable libraries).

#ifndef RDFCUBE_TOOLS_DEPS_LAYER_MANIFEST_H_
#define RDFCUBE_TOOLS_DEPS_LAYER_MANIFEST_H_

#include <cstddef>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"

namespace rdfcube {
namespace deps {

/// \brief The parsed layer manifest: declared modules and allowed edges.
struct LayerManifest {
  /// \brief One declared module and the modules it may depend on.
  struct Module {
    std::string name;
    bool wildcard = false;        ///< Declared as `name: *`.
    std::set<std::string> deps;   ///< Empty for leaves and wildcards.
    std::size_t line = 0;         ///< 1-based declaration line.
  };

  std::vector<Module> modules;  ///< Declaration order.

  /// Declared module by name, or nullptr.
  const Module* Find(const std::string& name) const;

  /// True when `from` may depend on `to` (declared dep, or `from` is a
  /// wildcard application root). Self-dependencies are always allowed.
  bool Allows(const std::string& from, const std::string& to) const;
};

/// Parses manifest text. Violations of the grammar or the DAG rule return a
/// ParseError naming the offending line.
Result<LayerManifest> ParseLayerManifest(const std::string& content);

/// Reads and parses `path`; IOError when unreadable.
Result<LayerManifest> LoadLayerManifest(const std::string& path);

/// Cycle among declared (non-wildcard) modules, as a module path with
/// first == last; nullopt when the declared graph is a DAG. Exposed for
/// tests; ParseLayerManifest already rejects cyclic manifests.
std::optional<std::vector<std::string>> FindManifestCycle(
    const LayerManifest& manifest);

}  // namespace deps
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_DEPS_LAYER_MANIFEST_H_
