// rdfcube_deps: the architecture gate, standalone (DESIGN.md §5f).
//
// Extracts the quoted-include graph of src/, tools/, and bench/, checks it
// against the declared layer DAG in tools/layers.txt (layer-dag,
// include-cycle, iwyu-direct — the same checks rdfcube_lint runs), and can
// export the graph for dashboards and CI artifacts.
//
// Usage: rdfcube_deps [root] [--manifest=PATH] [--dot=FILE] [--json=FILE]
//                      [--format=text|sarif]
//   root        repo root containing src/ and tools/ (default: .)
//   --manifest  layer manifest, relative to root (default: tools/layers.txt).
//               Unlike rdfcube_lint, a missing manifest FAILS the gate here.
//   --dot       write the module-level graph as Graphviz DOT to FILE
//   --json      write the full graph (files, modules, edges) as JSON to FILE
//   --format    violation output: `text` (default, one line per finding on
//               stderr) or `sarif` (SARIF 2.1.0 run on stdout — same schema
//               rdfcube_lint --format=sarif emits, for code-scanning UIs)
// Graph exports are written even when the gate fails, so CI can attach the
// offending graph to the failure. Exit: 0 clean, 1 violations, 2 usage/IO.

#include <cstdio>
#include <fstream>
#include <string>

#include "tools/deps/deps_analysis.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [repo-root] [--manifest=PATH] [--dot=FILE] "
               "[--json=FILE] [--format=text|sarif]\n",
               argv0);
  return 2;
}

bool WriteFileOrComplain(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "rdfcube_deps: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string dot_path;
  std::string json_path;
  std::string format = "text";
  rdfcube::deps::DepsOptions options;
  options.require_manifest = true;
  bool root_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [repo-root] [--manifest=PATH] [--dot=FILE] "
          "[--json=FILE] [--format=text|sarif]\n"
          "Architecture gate: extracts the #include graph of src/, tools/,\n"
          "and bench/, and checks it against the layer DAG declared in\n"
          "tools/layers.txt (checks: layer-dag, include-cycle, iwyu-direct).\n"
          "Writes the module graph as DOT/JSON when asked (also on failure).\n"
          "--format=sarif prints the violations as a SARIF 2.1.0 run on\n"
          "stdout (exit status is unchanged).\n"
          "Exits 0 when clean, 1 on violations, 2 on usage/IO errors.\n",
          argv[0]);
      return 0;
    }
    if (arg.rfind("--manifest=", 0) == 0) {
      options.manifest_rel = arg.substr(11);
    } else if (arg.rfind("--dot=", 0) == 0) {
      dot_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "sarif") return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return Usage(argv[0]);
    }
  }

  const rdfcube::deps::DepsReport report =
      rdfcube::deps::AnalyzeDeps(root, options);

  bool io_ok = true;
  if (!dot_path.empty()) {
    io_ok &= WriteFileOrComplain(dot_path,
                                 rdfcube::deps::GraphToDot(report.graph));
  }
  if (!json_path.empty()) {
    io_ok &= WriteFileOrComplain(json_path,
                                 rdfcube::deps::GraphToJson(report.graph));
  }

  if (format == "sarif") {
    // SARIF goes to stdout whole (clean runs emit an empty results array);
    // the exit status still reports the gate verdict.
    std::fputs(rdfcube::lint::ViolationsToSarif(report.violations).c_str(),
               stdout);
  } else {
    for (const auto& v : report.violations) {
      std::fprintf(stderr, "%s\n", rdfcube::lint::FormatViolation(v).c_str());
    }
  }
  if (!io_ok) return 2;
  if (!report.violations.empty()) {
    std::fprintf(stderr, "rdfcube_deps: %zu violation(s)\n",
                 report.violations.size());
    return 1;
  }
  if (format != "sarif") {
    std::printf("rdfcube_deps: architecture gate clean (%zu files)\n",
                report.graph.files.size());
  }
  return 0;
}
