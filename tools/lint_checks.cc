#include "tools/lint_checks.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <functional>
#include <map>
#include <regex>
#include <sstream>
#include <string_view>
#include <tuple>

#include "obs/json_writer.h"
#include "tools/callgraph/callgraph.h"
#include "tools/deps/deps_analysis.h"
#include "tools/source_text.h"

namespace rdfcube {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

// Sorted list of files under root/<subdir> with a source extension, as
// root-relative slash paths. Missing subdirs yield an empty list.
std::vector<std::string> SourceFilesUnder(const fs::path& root,
                                          const std::string& subdir) {
  std::vector<std::string> out;
  const fs::path base = root / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return out;
  for (fs::recursive_directory_iterator it(base, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && HasSourceExtension(it->path())) {
      out.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Every source file under src/, tools/ and bench/, loaded and stripped once;
// all lexical checks below share these views (the point of the tokenizer
// core: one pass, no per-check comment heuristics).
std::vector<SourceFile> LoadCorpus(const fs::path& root) {
  std::vector<SourceFile> corpus;
  for (const std::string& dir :
       {std::string("src"), std::string("tools"), std::string("bench")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      corpus.push_back(LoadSource(root / file, file));
    }
  }
  return corpus;
}

bool InDir(const SourceFile& f, std::string_view dir) {
  return f.path.size() > dir.size() && f.path.compare(0, dir.size(), dir) == 0 &&
         f.path[dir.size()] == '/';
}

bool IsHeader(const SourceFile& f) {
  return f.path.size() >= 2 &&
         f.path.compare(f.path.size() - 2, 2, ".h") == 0;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view TrimLeft(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

std::string_view TrimRight(std::string_view s) {
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// --- no-throw ----------------------------------------------------------------

void CheckNoThrow(const std::vector<SourceFile>& corpus,
                  std::vector<Violation>* out) {
  static const std::string kCheck = "no-throw";
  static const std::regex kThrow(R"(\bthrow\b)");
  for (const SourceFile& f : corpus) {
    if (!InDir(f, "src/base") && !InDir(f, "src/core") &&
        !InDir(f, "src/util")) {
      continue;
    }
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (std::regex_search(f.code[i], kThrow)) {
        out->push_back({kCheck, f.path, i + 1,
                        "throw on a hot path; return Status/Result instead "
                        "(no-exceptions rule for src/base, src/core and "
                        "src/util)"});
      }
    }
  }
}

// --- std-function-callback ---------------------------------------------------

void CheckStdFunctionCallbacks(const std::vector<SourceFile>& corpus,
                               std::vector<Violation>* out) {
  static const std::string kCheck = "std-function-callback";
  // A lambda whose parameter list declares an `auto` parameter: the generic
  // lambda becomes a distinct template instantiation per recursion depth.
  static const std::regex kGenericLambda(
      R"(\[[^\[\]]*\]\s*\([^)]*\bauto\b)");
  for (const SourceFile& f : corpus) {
    if (!InDir(f, "src/sparql") && !InDir(f, "src/rules")) continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (std::regex_search(f.code[i], kGenericLambda)) {
        out->push_back({kCheck, f.path, i + 1,
                        "generic lambda in a recursive-evaluator module; "
                        "take std::function callbacks (template recursion "
                        "OOMs the compiler on nested NOT EXISTS)"});
      }
    }
  }
}

// --- umbrella-sync -----------------------------------------------------------

void CheckUmbrellaSync(const std::vector<SourceFile>& corpus,
                       std::vector<Violation>* out) {
  static const std::string kCheck = "umbrella-sync";
  const std::string umbrella_rel = "src/rdfcube/rdfcube.h";
  const SourceFile* umbrella = nullptr;
  for (const SourceFile& f : corpus) {
    if (f.path == umbrella_rel) umbrella = &f;
  }
  if (umbrella == nullptr || umbrella->empty()) {
    out->push_back({kCheck, umbrella_rel, 0, "umbrella header is missing"});
    return;
  }
  // Includes listed by the umbrella, as src-relative paths. Directive lines
  // keep their header-name in the code view, so a commented-out include can
  // never count as listed.
  static const std::regex kInclude(R"re(#\s*include\s+"([^"]+)")re");
  std::vector<std::string> included;
  for (const std::string& line : umbrella->code) {
    std::smatch m;
    if (std::regex_search(line, m, kInclude)) included.push_back(m[1]);
  }
  for (const SourceFile& f : corpus) {
    if (!InDir(f, "src") || f.path == umbrella_rel || !IsHeader(f)) continue;
    const std::string src_rel = f.path.substr(4);  // drop "src/"
    if (std::find(included.begin(), included.end(), src_rel) !=
        included.end()) {
      continue;
    }
    bool internal = false;
    for (std::size_t i = 0; i < f.raw.size() && i < 10; ++i) {
      if (f.raw[i].find("rdfcube:internal") != std::string::npos) {
        internal = true;
        break;
      }
    }
    if (!internal) {
      out->push_back({kCheck, f.path, 0,
                      "public header not listed in " + umbrella_rel +
                          " (mark it rdfcube:internal if it is not public)"});
    }
  }
}

// --- doxygen-public ----------------------------------------------------------

void CheckDoxygenPublic(const std::vector<SourceFile>& corpus,
                        std::vector<Violation>* out) {
  static const std::string kCheck = "doxygen-public";
  // A top-level class/struct *definition*: column 0, optional attribute,
  // capitalized name, and not a forward declaration. Matched against the code
  // view, so "class Foo {" inside a comment or string never counts.
  static const std::regex kTypeDef(
      R"(^(class|struct)\s+(\[\[\w+\]\]\s+)?[A-Z]\w*[^;]*$)");
  for (const SourceFile& f : corpus) {
    if (!InDir(f, "src") || !IsHeader(f)) continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (!std::regex_search(f.code[i], kTypeDef)) continue;
      // Walk to the nearest preceding non-blank raw line, skipping template
      // heads; it must be a Doxygen /// comment (comments only exist in raw).
      bool documented = false;
      for (std::size_t j = i; j > 0; --j) {
        const std::string_view prev = TrimLeft(f.raw[j - 1]);
        if (prev.empty()) break;
        if (StartsWith(prev, "template")) continue;
        documented = StartsWith(prev, "///");
        break;
      }
      if (!documented) {
        out->push_back({kCheck, f.path, i + 1,
                        "public class/struct lacks a Doxygen /// comment"});
      }
    }
  }
}

// --- checked-parse -----------------------------------------------------------

void CheckParses(const std::vector<SourceFile>& corpus,
                 std::vector<Violation>* out) {
  static const std::string kCheck = "checked-parse";
  static const std::regex kUnchecked(
      R"(std::sto[a-z]+\s*\(|\b(atoi|atol|atoll|atof)\s*\()");
  for (const SourceFile& f : corpus) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (std::regex_search(f.code[i], kUnchecked)) {
        out->push_back({kCheck, f.path, i + 1,
                        "unchecked std::sto*/ato* parse (throws or returns "
                        "0 on bad input); use util/string_util "
                        "ParseDouble/ParseU64"});
      }
    }
  }
}

// --- bare-stopwatch ----------------------------------------------------------

void CheckBareStopwatch(const std::vector<SourceFile>& corpus,
                        std::vector<Violation>* out) {
  static const std::string kCheck = "bare-stopwatch";
  static const std::regex kStopwatch(R"(\bStopwatch\b)");
  for (const SourceFile& f : corpus) {
    if (!InDir(f, "bench")) continue;
    // bench_util implements the harness itself and may hold the raw clock.
    const std::string base = fs::path(f.path).filename().string();
    if (StartsWith(base, "bench_util.")) continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (std::regex_search(f.code[i], kStopwatch)) {
        out->push_back({kCheck, f.path, i + 1,
                        "raw Stopwatch in a bench harness; time phases with "
                        "obs::TraceSpan so they appear in BENCH_*.json"});
      }
    }
  }
}

// --- lock-annotation ---------------------------------------------------------

void CheckLockAnnotations(const std::vector<SourceFile>& corpus,
                          std::vector<Violation>* out) {
  static const std::string kCheck = "lock-annotation";
  // A data-member (or local) *declaration* of a standard lock type: the type
  // starts the statement, so template-argument occurrences such as
  // std::unique_lock<std::mutex> never match.
  static const std::regex kBareLockMember(
      R"(^\s*(mutable\s+)?std::(mutex|shared_mutex|shared_timed_mutex|condition_variable(_any)?)\s+[A-Za-z_])");
  for (const SourceFile& f : corpus) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (!std::regex_search(f.code[i], kBareLockMember)) continue;
      if (f.code[i].find("RDFCUBE_") != std::string::npos) continue;
      out->push_back(
          {kCheck, f.path, i + 1,
           "unannotated lock: use rdfcube::Mutex (annotated capability, "
           "base/thread_annotations.h) or add an RDFCUBE_* thread-safety "
           "annotation (condvars: RDFCUBE_CONDVAR_PAIRED_WITH(<mutex>))"});
    }
  }
}

// --- obs-shadowing -----------------------------------------------------------

void CheckObsShadowing(const std::vector<SourceFile>& corpus,
                       std::vector<Violation>* out) {
  static const std::string kCheck = "obs-shadowing";
  // A declaration introducing a variable named `obs`: a type-ish token, then
  // `obs`, then an initializer or declaration terminator. Parameters named
  // obs (`... & obs,` / `... & obs)`) are the established call-signature
  // style and are excluded — inside those bodies the obx alias applies.
  static const std::regex kObsDecl(R"([A-Za-z0-9_>&*\]]\s+obs\s*[={;])");
  for (const SourceFile& f : corpus) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      const std::string& code = f.code[i];
      if (code.find("namespace") != std::string::npos) continue;
      if (!std::regex_search(code, kObsDecl)) continue;
      out->push_back(
          {kCheck, f.path, i + 1,
           "local variable named `obs` shadows namespace rdfcube::obs "
           "(obs::Counter etc. stop resolving); rename it, or alias "
           "`namespace obx = ::rdfcube::obs;` for instrumentation"});
    }
  }
}

// --- metric-name -------------------------------------------------------------

void CheckMetricNames(const std::vector<SourceFile>& corpus,
                      std::vector<Violation>* out) {
  static const std::string kCheck = "metric-name";
  static const std::regex kRegistration(
      R"((DefaultCounter|DefaultGauge|DefaultHistogram|GetCounter|GetGauge|GetHistogram)\s*\()");
  static const std::regex kLiteral(R"re("([^"]*)")re");
  // rdfcube_<module>_<name>_<unit>: lowercase, at least four tokens overall
  // (rdfcube + module + one-or-more name words + unit).
  static const std::regex kScheme(R"(^rdfcube_[a-z][a-z0-9]*(_[a-z0-9]+){2,}$)");
  for (const SourceFile& f : corpus) {
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      // Detect the registration call on the code view (a call name inside a
      // string or comment is not a registration)...
      if (!std::regex_search(f.code[i], kRegistration)) continue;
      // ...but read the name literal from the text view, where string
      // contents survive comment stripping.
      std::smatch m;
      std::size_t literal_line = i;
      std::string literal;
      if (std::regex_search(f.text[i], m, kLiteral)) {
        literal = m[1];
      } else if (f.code[i].find(';') == std::string::npos &&
                 i + 1 < f.text.size()) {
        // Wrapped call: the statement continues, so the name literal may sit
        // on the following line. A call line ending the statement with a
        // variable name (registry pass-throughs) is skipped instead.
        if (std::regex_search(f.text[i + 1], m, kLiteral)) {
          literal = m[1];
          literal_line = i + 1;
        }
      }
      if (literal.empty() || LineSuppressed(f, literal_line, kCheck)) {
        continue;
      }
      if (!std::regex_match(literal, kScheme)) {
        out->push_back(
            {kCheck, f.path, literal_line + 1,
             "metric name '" + literal +
                 "' violates the rdfcube_<module>_<name>_<unit> scheme "
                 "(lowercase, >= 4 underscore-separated tokens)"});
      }
    }
  }
}

// --- no-raw-stderr -----------------------------------------------------------

void CheckNoRawStderr(const std::vector<SourceFile>& corpus,
                      std::vector<Violation>* out) {
  static const std::string kCheck = "no-raw-stderr";
  // The token itself, wherever it appears in code: fprintf(stderr, ...),
  // fputs(..., stderr), a bare `stderr` argument on a continuation line of a
  // wrapped call, or a std::cerr stream write. Matching the token (not the
  // call) is deliberate: multi-line calls put `stderr` alone on a later line.
  static const std::regex kRawStderr(R"(\bstderr\b|\bstd\s*::\s*cerr\b)");
  for (const SourceFile& f : corpus) {
    if (!InDir(f, "src") && f.path != "tools/rdfcube_serverd.cc") continue;
    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      if (std::regex_search(f.code[i], kRawStderr)) {
        out->push_back({kCheck, f.path, i + 1,
                        "raw stderr write; route diagnostics through "
                        "obs::Log{Info,Warn,Error} (structured, rate-limited) "
                        "— only the logger's own terminal sink may touch "
                        "stderr directly"});
      }
    }
  }
}

// --- checked-value -----------------------------------------------------------

// Scans the receiver expression that ends just before position `end` on
// `line` (i.e. before the `.value()` / `->value()` operator). Returns the
// start index of the receiver, or npos when the shape is not one we track.
// Handles call chains (`dict.Get(id)`, `std::move(tmp)`) and plain
// identifiers; gives up on anything else (array indexing, casts, ...).
std::size_t ReceiverStart(const std::string& line, std::size_t end) {
  std::size_t pos = end;
  bool first = true;
  while (true) {
    while (pos > 0 && line[pos - 1] == ' ') --pos;
    if (pos > 0 && line[pos - 1] == ')') {
      // Balance backwards to the matching '('.
      int depth = 0;
      std::size_t q = pos;
      while (q > 0) {
        --q;
        if (line[q] == ')') ++depth;
        if (line[q] == '(') {
          --depth;
          if (depth == 0) break;
        }
      }
      if (depth != 0) return std::string::npos;
      pos = q;
      // Consume the callee name (possibly namespace-qualified).
      std::size_t before = pos;
      while (pos > 0 &&
             (std::isalnum(static_cast<unsigned char>(line[pos - 1])) != 0 ||
              line[pos - 1] == '_' || line[pos - 1] == ':')) {
        --pos;
      }
      if (pos == before && first) return std::string::npos;
    } else {
      std::size_t before = pos;
      while (pos > 0 &&
             (std::isalnum(static_cast<unsigned char>(line[pos - 1])) != 0 ||
              line[pos - 1] == '_')) {
        --pos;
      }
      if (pos == before) return first ? std::string::npos : before;
    }
    first = false;
    // Chain further through `.` / `->`?
    if (pos > 0 && line[pos - 1] == '.') {
      --pos;
    } else if (pos > 1 && line[pos - 2] == '-' && line[pos - 1] == '>') {
      pos -= 2;
    } else {
      return pos;
    }
  }
}

// True when `text` contains `receiver` immediately followed (modulo spaces)
// by .ok( or .has_value( — the guard idiom for call-chain receivers.
bool ChainGuardIn(const std::string& text, const std::string& receiver) {
  std::size_t at = 0;
  while ((at = text.find(receiver, at)) != std::string::npos) {
    std::size_t p = at + receiver.size();
    while (p < text.size() && text[p] == ' ') ++p;
    if (p < text.size() && (text[p] == '.' ||
                            (text[p] == '-' && p + 1 < text.size() &&
                             text[p + 1] == '>'))) {
      p += text[p] == '.' ? 1 : 2;
      while (p < text.size() && text[p] == ' ') ++p;
      if (text.compare(p, 3, "ok(") == 0 ||
          text.compare(p, 10, "has_value(") == 0) {
        return true;
      }
    }
    ++at;
  }
  return false;
}

void CheckCheckedValue(const std::vector<SourceFile>& corpus,
                       std::vector<Violation>* out) {
  static const std::string kCheck = "checked-value";
  static const std::regex kValueCall(R"((\.|->)\s*value\s*\(\s*\))");
  static const std::regex kMove(R"(^std\s*::\s*move\s*\(\s*(\w+)\s*\)$)");
  static const std::regex kIdent(R"(^\w+$)");

  for (const SourceFile& f : corpus) {
    // Scans upward from `from` (exclusive) for a code line satisfying `pred`;
    // stops after the line that opens the enclosing block, so guards in
    // earlier sibling blocks do not count. Capped so pathological files stay
    // cheap.
    const auto guard_above = [&f](std::size_t from,
                                  const std::function<bool(const std::string&)>&
                                      pred) {
      int depth = 0;
      std::size_t scanned = 0;
      for (std::size_t j = from; j > 0 && scanned < 60; --j, ++scanned) {
        const std::string& c = f.code[j - 1];
        // depth < 0 means the upward scan is inside an earlier *sibling*
        // block (net closes seen): a guard there does not dominate the use.
        if (depth == 0 && pred(c)) return true;
        for (char ch : c) {
          if (ch == '{') ++depth;
          if (ch == '}') --depth;
        }
        if (depth > 0) return false;  // passed our block opener
      }
      return false;
    };

    // Finds the nearest preceding explicit Result</optional< declaration of
    // `id` (auto-typed locals are deliberately not tracked — dataflow-lite).
    // Returns the 0-based line or npos.
    const auto decl_line = [&f](std::size_t from, const std::string& id) {
      // `(` and `)` are excluded from the template-argument span so a
      // function *return* type can never pair with a parameter name later in
      // the signature (`Result<Model> KMeans(...& points` is not a
      // declaration of `points`).
      const std::regex decl(
          R"((\bResult\s*<|\boptional\s*<)[^;={}()]*>[&*\s]*\b)" + id +
          R"(\b)");
      std::size_t scanned = 0;
      for (std::size_t j = from + 1; j > 0 && scanned < 80; --j, ++scanned) {
        if (std::regex_search(f.code[j - 1], decl)) return j - 1;
        if (!f.code[j - 1].empty() && f.code[j - 1][0] == '}') break;
      }
      return std::string::npos;
    };

    const auto ident_guarded = [&f](std::size_t decl, std::size_t use,
                                    const std::string& stmt,
                                    const std::string& id) {
      const std::regex g1(R"(\b)" + id +
                          R"(\s*(\.|->)\s*(ok|has_value)\s*\()");
      const std::regex g2(R"([(!]\s*)" + id + R"(\s*[)&|])");
      if (std::regex_search(stmt, g1) || std::regex_search(stmt, g2)) {
        return true;
      }
      for (std::size_t j = decl; j < use; ++j) {
        if (std::regex_search(f.code[j], g1) ||
            std::regex_search(f.code[j], g2)) {
          return true;
        }
      }
      return false;
    };

    for (std::size_t i = 0; i < f.code.size(); ++i) {
      if (LineSuppressed(f, i, kCheck)) continue;
      const std::string& line = f.code[i];

      // Macro-continuation statements span lines ending in '\'; join them so
      // a guard earlier in the same macro body counts (and scan guards from
      // the chain start, not the middle).
      std::size_t chain_start = i;
      while (chain_start > 0) {
        const std::string_view prev = TrimRight(f.code[chain_start - 1]);
        if (prev.empty() || prev.back() != '\\') break;
        --chain_start;
      }
      std::string stmt;
      for (std::size_t j = chain_start; j <= i; ++j) {
        std::string_view part = TrimRight(f.code[j]);
        if (!part.empty() && part.back() == '\\') part.remove_suffix(1);
        stmt.append(part);
        stmt.push_back(' ');
      }

      for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                          kValueCall);
           it != std::sregex_iterator(); ++it) {
        const std::size_t op = static_cast<std::size_t>(it->position(0));
        const std::size_t start = ReceiverStart(line, op);
        if (start == std::string::npos) continue;
        std::string receiver = line.substr(start, op - start);
        while (!receiver.empty() && receiver.front() == ' ') {
          receiver.erase(receiver.begin());
        }
        if (receiver.empty()) continue;

        std::smatch m;
        std::string id;
        if (std::regex_match(receiver, m, kMove)) {
          id = m[1];  // std::move(x).value(): track x
        } else if (std::regex_match(receiver, kIdent)) {
          id = receiver;
        }

        if (!id.empty()) {
          // Identifier receiver: only meaningful when an explicit
          // Result/optional declaration is visible (Term::value() and other
          // plain accessors must not fire).
          const std::size_t decl = decl_line(i, id);
          if (decl == std::string::npos) continue;
          if (ident_guarded(decl, i, stmt, id)) continue;
          out->push_back(
              {kCheck, f.path, i + 1,
               "`" + id + ".value()` without a visible ok()/has_value() "
               "guard after its Result/optional declaration; test it first "
               "or state the invariant with lint:allow(checked-value)"});
        } else if (receiver.find('(') != std::string::npos) {
          // Call-chain receiver: the temporary cannot be tested after the
          // fact, so the same expression must appear under a guard in the
          // statement or the enclosing block.
          if (ChainGuardIn(stmt, receiver)) continue;
          if (guard_above(chain_start, [&receiver](const std::string& c) {
                return ChainGuardIn(c, receiver);
              })) {
            continue;
          }
          out->push_back(
              {kCheck, f.path, i + 1,
               "`" + receiver + ".value()` on an unguarded call result; "
               "bind it and test ok()/has_value(), or state the invariant "
               "with lint:allow(checked-value)"});
        }
      }

      // `*opt` dereferences of tracked locals. The token before `*` (modulo
      // spaces) decides dereference vs multiplication: an identifier, ')',
      // ']' or a literal on the left means arithmetic.
      static const std::regex kDeref(R"(\*\s*([A-Za-z_]\w*)\b)");
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kDeref);
           it != std::sregex_iterator(); ++it) {
        std::size_t p = static_cast<std::size_t>(it->position(0));
        std::size_t q = p;
        while (q > 0 && line[q - 1] == ' ') --q;
        if (q > 0) {
          const char before = line[q - 1];
          if (std::isalnum(static_cast<unsigned char>(before)) != 0 ||
              before == '_' || before == ')' || before == ']' ||
              before == '*') {
            continue;  // multiplication or pointer-type syntax
          }
        }
        // Postfix operators bind tighter than `*`: in `*points[i]` or
        // `*it->second` the dereference applies to a subexpression, not to
        // the identifier itself.
        const std::size_t after =
            static_cast<std::size_t>(it->position(0) + it->length(0));
        std::size_t a = after;
        while (a < line.size() && line[a] == ' ') ++a;
        if (a < line.size() && (line[a] == '[' || line[a] == '.' ||
                                line[a] == '(' || line[a] == '-')) {
          continue;
        }
        const std::string id = (*it)[1];
        const std::size_t decl = decl_line(i, id);
        if (decl == std::string::npos) continue;
        // A declaration on this very line (`optional<T> x = *y` matches y,
        // but `*x` on the decl line is the type, not a deref).
        if (decl == i) continue;
        if (ident_guarded(decl, i, stmt, id)) continue;
        out->push_back(
            {kCheck, f.path, i + 1,
             "`*" + id + "` dereference without a visible ok()/has_value() "
             "guard after its Result/optional declaration; test it first or "
             "state the invariant with lint:allow(checked-value)"});
      }
    }
  }
}

// --- call-graph checks (tools/callgraph; see DESIGN.md §5g) ------------------

// hot-path-alloc / hot-path-lock / no-throw-transitive / unbounded-recursion
// plus the taint gate (untrusted-size-sink / unchecked-size-arith /
// missing-limit-clamp, DESIGN.md §5h) and the lock gate (lock-order-cycle /
// blocking-under-lock / callback-under-lock, DESIGN.md §5i; the sanctioned
// nesting manifest is tools/lock_order.txt under `root`).
// All run over the linked cross-TU call graph of src/ (tools/ and bench/
// carry no RDFCUBE_HOT kernels and would only add name-collision noise).
// Findings anchor at the flagged function's definition line — except the
// per-sink taint findings and the per-site lock findings, which anchor at
// the sink/call line — and `lint:allow(<check>)` suppresses them at that
// anchor line (lock findings also honor one on the definition line, for
// contracts that hold for every call site of the function).
void CheckCallGraph(const std::string& root,
                    const std::vector<SourceFile>& corpus,
                    std::vector<Violation>* out) {
  std::vector<SourceFile> src;
  for (const SourceFile& f : corpus) {
    if (InDir(f, "src")) src.push_back(f);
  }
  const callgraph::CallGraph graph = callgraph::BuildCallGraph(src);
  const std::vector<callgraph::FunctionSummary> summaries =
      callgraph::ComputeSummaries(graph);

  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& f : src) by_path[f.path] = &f;
  const auto suppressed = [&by_path](const callgraph::FunctionInfo& fn,
                                     const std::string& check) {
    const auto it = by_path.find(fn.file);
    return it != by_path.end() && fn.line > 0 &&
           LineSuppressed(*it->second, fn.line - 1, check);
  };

  for (const callgraph::HotPathViolation& v :
       callgraph::EvaluateHotGate(graph, summaries)) {
    const callgraph::FunctionInfo& fn =
        graph.functions[static_cast<std::size_t>(v.fn)];
    if (suppressed(fn, v.kind)) continue;
    const char* what = v.kind == "hot-path-alloc"
                           ? "a heap allocation (hoist it, pre-reserve, or "
                             "mark the slow-path callee RDFCUBE_COLD)"
                           : "a lock acquisition (pin shared state before "
                             "entering the kernel)";
    out->push_back({v.kind, fn.file, fn.line,
                    "RDFCUBE_HOT function reaches " + std::string(what) +
                        ": " + v.witness});
  }

  static const std::string kNoThrowTransitive = "no-throw-transitive";
  static const std::string kUnboundedRecursion = "unbounded-recursion";
  static const std::regex kBoundParam(
      R"(\b(depth|budget|fuel|limit|remaining)\b)");
  for (std::size_t i = 0; i < graph.functions.size(); ++i) {
    const callgraph::FunctionInfo& fn = graph.functions[i];
    const callgraph::FunctionSummary& s = summaries[i];
    const bool no_throw_layer = StartsWith(fn.file, "src/base/") ||
                                StartsWith(fn.file, "src/core/") ||
                                StartsWith(fn.file, "src/util/");
    // The lexical no-throw check owns throws written in the function itself;
    // this one fires when the throw lives in a callee.
    if (no_throw_layer && s.thrown.reaches &&
        s.thrown.source != static_cast<int>(i) &&
        !suppressed(fn, kNoThrowTransitive)) {
      out->push_back(
          {kNoThrowTransitive, fn.file, fn.line,
           "function in a no-throw layer reaches a throw: " +
               callgraph::WitnessChain(graph, summaries, static_cast<int>(i),
                                       callgraph::FactKind::kThrow)});
    }
    const bool recursion_layer = StartsWith(fn.file, "src/sparql/") ||
                                 StartsWith(fn.file, "src/rules/");
    if (recursion_layer && s.recursive &&
        !std::regex_search(fn.params, kBoundParam) &&
        !suppressed(fn, kUnboundedRecursion)) {
      out->push_back({kUnboundedRecursion, fn.file, fn.line,
                      "`" + fn.qualified +
                          "` sits in a direct-call cycle but takes no "
                          "recursion bound; thread an explicit "
                          "depth/budget parameter through the cycle"});
    }
  }

  const auto line_suppressed = [&by_path](const std::string& file,
                                          std::size_t line,
                                          const std::string& check) {
    const auto it = by_path.find(file);
    return it != by_path.end() && line > 0 &&
           LineSuppressed(*it->second, line - 1, check);
  };
  for (const callgraph::TaintViolation& v :
       callgraph::EvaluateTaintGate(graph, summaries)) {
    const callgraph::FunctionInfo& fn =
        graph.functions[static_cast<std::size_t>(v.fn)];
    if (line_suppressed(fn.file, v.line, v.kind)) continue;
    std::string msg;
    if (v.kind == "untrusted-size-sink") {
      msg = "sized sink fed from untrusted input with no limit comparison "
            "in `" + fn.qualified + "`; clamp against a named limit (or "
            "assert the boundary with RDFCUBE_TAINT_BARRIER): " + v.witness;
    } else if (v.kind == "unchecked-size-arith") {
      msg = "size arithmetic on untrusted values in `" + fn.qualified +
            "` can overflow before the bounds check; use util/safe_math "
            "CheckedAdd/CheckedMul: " + v.witness;
    } else {
      msg = "decoder clamps nothing: " + v.witness;
    }
    out->push_back({v.kind, fn.file, v.line, msg});
  }

  // Lock gate (DESIGN.md §5i): the observed lock-order graph must be
  // acyclic and declared, and nothing blocking or virtually-dispatched may
  // run while a Mutex is held.
  const callgraph::LockGraph lock_graph = callgraph::BuildLockGraph(graph);
  const callgraph::LockOrderManifest manifest =
      callgraph::LoadLockOrderManifest(
          (fs::path(root) / "tools" / "lock_order.txt").string());
  for (const callgraph::LockViolation& v :
       callgraph::EvaluateLockGate(graph, summaries, lock_graph, manifest)) {
    if (v.fn < 0) {
      // Manifest-level finding (declared-edge cycle / self-loop).
      out->push_back({v.kind, "tools/lock_order.txt", v.line, v.witness});
      continue;
    }
    const callgraph::FunctionInfo& fn =
        graph.functions[static_cast<std::size_t>(v.fn)];
    if (line_suppressed(v.file, v.line, v.kind) || suppressed(fn, v.kind)) {
      continue;
    }
    std::string msg;
    if (v.kind == "blocking-under-lock") {
      msg = "blocking call reachable while a Mutex is held (move the wait/"
            "I/O outside the critical section): " + v.witness;
    } else if (v.kind == "callback-under-lock") {
      msg = "std::function/virtual dispatch reachable while a Mutex is held "
            "(copy-then-release: snapshot under the lock, invoke outside): " +
            v.witness;
    } else {
      msg = v.witness + " — sanction a deliberate nesting by declaring it "
            "in tools/lock_order.txt";
    }
    out->push_back({v.kind, v.file, v.line, msg});
  }
}

}  // namespace

std::vector<Violation> RunAllChecks(const std::string& root) {
  std::vector<Violation> out;
  std::error_code ec;
  if (!fs::is_directory(fs::path(root) / "src", ec)) {
    out.push_back({"lint", root, 0, "no src/ directory under lint root"});
    return out;
  }
  const fs::path r(root);
  const std::vector<SourceFile> corpus = LoadCorpus(r);
  CheckNoThrow(corpus, &out);
  CheckStdFunctionCallbacks(corpus, &out);
  CheckUmbrellaSync(corpus, &out);
  CheckDoxygenPublic(corpus, &out);
  CheckParses(corpus, &out);
  CheckBareStopwatch(corpus, &out);
  CheckLockAnnotations(corpus, &out);
  CheckObsShadowing(corpus, &out);
  CheckMetricNames(corpus, &out);
  CheckNoRawStderr(corpus, &out);
  CheckCheckedValue(corpus, &out);
  CheckCallGraph(root, corpus, &out);

  // Architecture checks (tools/deps): layer-dag (skipped when the tree
  // declares no tools/layers.txt), include-cycle, iwyu-direct.
  deps::DepsOptions deps_options;
  deps_options.require_manifest = false;
  deps::DepsReport deps_report = deps::AnalyzeDeps(root, deps_options);
  out.insert(out.end(), deps_report.violations.begin(),
             deps_report.violations.end());

  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.check) <
           std::tie(b.file, b.line, b.check);
  });
  return out;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.file;
  if (v.line != 0) os << ":" << v.line;
  os << ": [" << v.check << "] " << v.message;
  return os.str();
}

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out += "  {\"file\": ";
    obs::AppendJsonString(&out, v.file);
    out += ", \"line\": " + std::to_string(v.line) + ", \"check\": ";
    obs::AppendJsonString(&out, v.check);
    out += ", \"message\": ";
    obs::AppendJsonString(&out, v.message);
    out += i + 1 == violations.size() ? "}\n" : "},\n";
  }
  out += "]\n";
  return out;
}

std::string ViolationsToSarif(const std::vector<Violation>& violations) {
  // Rule metadata: one reportingDescriptor per distinct check, sorted.
  std::vector<std::string> rules;
  for (const Violation& v : violations) rules.push_back(v.check);
  std::sort(rules.begin(), rules.end());
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());

  std::string out;
  out += "{\n";
  out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [{\n";
  out += "    \"tool\": {\"driver\": {\"name\": \"rdfcube_lint\", "
         "\"rules\": [";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"id\": ";
    obs::AppendJsonString(&out, rules[i]);
    out += "}";
  }
  out += "]}},\n";
  out += "    \"results\": [\n";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    out += "      {\"ruleId\": ";
    obs::AppendJsonString(&out, v.check);
    out += ", \"level\": \"error\", \"message\": {\"text\": ";
    obs::AppendJsonString(&out, v.message);
    out += "}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": ";
    obs::AppendJsonString(&out, v.file);
    out += "}";
    if (v.line != 0) {
      out += ", \"region\": {\"startLine\": " + std::to_string(v.line) + "}";
    }
    out += "}}]}";
    out += i + 1 == violations.size() ? "\n" : ",\n";
  }
  out += "    ]\n";
  out += "  }]\n";
  out += "}\n";
  return out;
}

}  // namespace lint
}  // namespace rdfcube
