#include "tools/lint_checks.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string_view>
#include <tuple>

namespace rdfcube {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

std::vector<std::string> ReadLines(const fs::path& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

// The text of `line` with any trailing //-comment removed (naive: does not
// understand string literals, which is fine for the token classes we hunt).
std::string_view CodeText(const std::string& line) {
  const std::size_t pos = line.find("//");
  return std::string_view(line).substr(0, pos);
}

bool Suppressed(const std::string& line, const std::string& check) {
  return line.find("lint:allow(" + check + ")") != std::string::npos;
}

// Sorted list of files under root/<subdir> with a source extension, as
// root-relative slash paths. Missing subdirs yield an empty list.
std::vector<std::string> SourceFilesUnder(const fs::path& root,
                                          const std::string& subdir) {
  std::vector<std::string> out;
  const fs::path base = root / subdir;
  std::error_code ec;
  if (!fs::is_directory(base, ec)) return out;
  for (fs::recursive_directory_iterator it(base, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file() && HasSourceExtension(it->path())) {
      out.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string_view TrimLeft(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  return s;
}

// --- no-throw ----------------------------------------------------------------

void CheckNoThrow(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "no-throw";
  static const std::regex kThrow(R"(\bthrow\b)");
  for (const std::string& dir : {std::string("src/core"), std::string("src/util")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      const std::vector<std::string> lines = ReadLines(root / file);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Suppressed(lines[i], kCheck)) continue;
        const std::string code(CodeText(lines[i]));
        if (std::regex_search(code, kThrow)) {
          out->push_back({kCheck, file, i + 1,
                          "throw on a hot path; return Status/Result instead "
                          "(no-exceptions rule for src/core and src/util)"});
        }
      }
    }
  }
}

// --- std-function-callback ---------------------------------------------------

void CheckStdFunctionCallbacks(const fs::path& root,
                               std::vector<Violation>* out) {
  static const std::string kCheck = "std-function-callback";
  // A lambda whose parameter list declares an `auto` parameter: the generic
  // lambda becomes a distinct template instantiation per recursion depth.
  static const std::regex kGenericLambda(
      R"(\[[^\[\]]*\]\s*\([^)]*\bauto\b)");
  for (const std::string& dir :
       {std::string("src/sparql"), std::string("src/rules")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      const std::vector<std::string> lines = ReadLines(root / file);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Suppressed(lines[i], kCheck)) continue;
        const std::string code(CodeText(lines[i]));
        if (std::regex_search(code, kGenericLambda)) {
          out->push_back({kCheck, file, i + 1,
                          "generic lambda in a recursive-evaluator module; "
                          "take std::function callbacks (template recursion "
                          "OOMs the compiler on nested NOT EXISTS)"});
        }
      }
    }
  }
}

// --- umbrella-sync -----------------------------------------------------------

void CheckUmbrellaSync(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "umbrella-sync";
  const std::string umbrella_rel = "src/rdfcube/rdfcube.h";
  const fs::path umbrella = root / umbrella_rel;
  std::error_code ec;
  if (!fs::is_regular_file(umbrella, ec)) {
    out->push_back({kCheck, umbrella_rel, 0, "umbrella header is missing"});
    return;
  }
  // Includes listed by the umbrella, as src-relative paths.
  static const std::regex kInclude(R"re(#include\s+"([^"]+)")re");
  std::vector<std::string> included;
  for (const std::string& line : ReadLines(umbrella)) {
    std::smatch m;
    if (std::regex_search(line, m, kInclude)) included.push_back(m[1]);
  }
  for (const std::string& file : SourceFilesUnder(root, "src")) {
    if (!StartsWith(file, "src/") || file == umbrella_rel) continue;
    if (file.size() < 2 || file.substr(file.size() - 2) != ".h") continue;
    const std::string src_rel = file.substr(4);  // drop "src/"
    if (std::find(included.begin(), included.end(), src_rel) !=
        included.end()) {
      continue;
    }
    const std::vector<std::string> lines = ReadLines(root / file);
    bool internal = false;
    for (std::size_t i = 0; i < lines.size() && i < 10; ++i) {
      if (lines[i].find("rdfcube:internal") != std::string::npos) {
        internal = true;
        break;
      }
    }
    if (!internal) {
      out->push_back({kCheck, file, 0,
                      "public header not listed in " + umbrella_rel +
                          " (mark it rdfcube:internal if it is not public)"});
    }
  }
}

// --- doxygen-public ----------------------------------------------------------

void CheckDoxygenPublic(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "doxygen-public";
  // A top-level class/struct *definition*: column 0, optional attribute,
  // capitalized name, and not a forward declaration.
  static const std::regex kTypeDef(
      R"(^(class|struct)\s+(\[\[\w+\]\]\s+)?[A-Z]\w*[^;]*$)");
  for (const std::string& file : SourceFilesUnder(root, "src")) {
    if (file.size() < 2 || file.substr(file.size() - 2) != ".h") continue;
    const std::vector<std::string> lines = ReadLines(root / file);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (Suppressed(lines[i], kCheck)) continue;
      if (!std::regex_search(lines[i], kTypeDef)) continue;
      // Walk to the nearest preceding non-blank line, skipping template
      // heads; it must be a Doxygen /// comment.
      bool documented = false;
      for (std::size_t j = i; j > 0; --j) {
        const std::string_view prev = TrimLeft(lines[j - 1]);
        if (prev.empty()) break;
        if (StartsWith(prev, "template")) continue;
        documented = StartsWith(prev, "///");
        break;
      }
      if (!documented) {
        out->push_back({kCheck, file, i + 1,
                        "public class/struct lacks a Doxygen /// comment"});
      }
    }
  }
}

// --- checked-parse -----------------------------------------------------------

void CheckParses(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "checked-parse";
  static const std::regex kUnchecked(
      R"(std::sto[a-z]+\s*\(|\b(atoi|atol|atoll|atof)\s*\()");
  for (const std::string& dir :
       {std::string("src"), std::string("tools"), std::string("bench")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      const std::vector<std::string> lines = ReadLines(root / file);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Suppressed(lines[i], kCheck)) continue;
        const std::string code(CodeText(lines[i]));
        if (std::regex_search(code, kUnchecked)) {
          out->push_back({kCheck, file, i + 1,
                          "unchecked std::sto*/ato* parse (throws or returns "
                          "0 on bad input); use util/string_util "
                          "ParseDouble/ParseU64"});
        }
      }
    }
  }
}

// --- bare-stopwatch ----------------------------------------------------------

void CheckBareStopwatch(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "bare-stopwatch";
  static const std::regex kStopwatch(R"(\bStopwatch\b)");
  for (const std::string& file : SourceFilesUnder(root, "bench")) {
    // bench_util implements the harness itself and may hold the raw clock.
    const std::string base = fs::path(file).filename().string();
    if (StartsWith(base, "bench_util.")) continue;
    const std::vector<std::string> lines = ReadLines(root / file);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (Suppressed(lines[i], kCheck)) continue;
      const std::string code(CodeText(lines[i]));
      if (std::regex_search(code, kStopwatch)) {
        out->push_back({kCheck, file, i + 1,
                        "raw Stopwatch in a bench harness; time phases with "
                        "obs::TraceSpan so they appear in BENCH_*.json"});
      }
    }
  }
}

// --- lock-annotation ---------------------------------------------------------

void CheckLockAnnotations(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "lock-annotation";
  // A data-member (or local) *declaration* of a standard lock type: the type
  // starts the statement, so template-argument occurrences such as
  // std::unique_lock<std::mutex> never match.
  static const std::regex kBareLockMember(
      R"(^\s*(mutable\s+)?std::(mutex|shared_mutex|shared_timed_mutex|condition_variable(_any)?)\s+[A-Za-z_])");
  for (const std::string& dir :
       {std::string("src"), std::string("tools"), std::string("bench")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      const std::vector<std::string> lines = ReadLines(root / file);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Suppressed(lines[i], kCheck)) continue;
        const std::string code(CodeText(lines[i]));
        if (!std::regex_search(code, kBareLockMember)) continue;
        if (code.find("RDFCUBE_") != std::string::npos) continue;
        out->push_back(
            {kCheck, file, i + 1,
             "unannotated lock: use rdfcube::Mutex (annotated capability, "
             "util/thread_annotations.h) or add an RDFCUBE_* thread-safety "
             "annotation (condvars: RDFCUBE_CONDVAR_PAIRED_WITH(<mutex>))"});
      }
    }
  }
}

// --- obs-shadowing -----------------------------------------------------------

void CheckObsShadowing(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "obs-shadowing";
  // A declaration introducing a variable named `obs`: a type-ish token, then
  // `obs`, then an initializer or declaration terminator. Parameters named
  // obs (`... & obs,` / `... & obs)`) are the established call-signature
  // style and are excluded — inside those bodies the obx alias applies.
  static const std::regex kObsDecl(R"([A-Za-z0-9_>&*\]]\s+obs\s*[={;])");
  for (const std::string& dir :
       {std::string("src"), std::string("tools"), std::string("bench")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      const std::vector<std::string> lines = ReadLines(root / file);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Suppressed(lines[i], kCheck)) continue;
        const std::string code(CodeText(lines[i]));
        if (code.find("namespace") != std::string::npos) continue;
        if (!std::regex_search(code, kObsDecl)) continue;
        out->push_back(
            {kCheck, file, i + 1,
             "local variable named `obs` shadows namespace rdfcube::obs "
             "(obs::Counter etc. stop resolving); rename it, or alias "
             "`namespace obx = ::rdfcube::obs;` for instrumentation"});
      }
    }
  }
}

// --- metric-name -------------------------------------------------------------

void CheckMetricNames(const fs::path& root, std::vector<Violation>* out) {
  static const std::string kCheck = "metric-name";
  static const std::regex kRegistration(
      R"((DefaultCounter|DefaultGauge|DefaultHistogram|GetCounter|GetGauge|GetHistogram)\s*\()");
  static const std::regex kLiteral(R"re("([^"]*)")re");
  // rdfcube_<module>_<name>_<unit>: lowercase, at least four tokens overall
  // (rdfcube + module + one-or-more name words + unit).
  static const std::regex kScheme(R"(^rdfcube_[a-z][a-z0-9]*(_[a-z0-9]+){2,}$)");
  for (const std::string& dir :
       {std::string("src"), std::string("tools"), std::string("bench")}) {
    for (const std::string& file : SourceFilesUnder(root, dir)) {
      const std::vector<std::string> lines = ReadLines(root / file);
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (Suppressed(lines[i], kCheck)) continue;
        const std::string code(CodeText(lines[i]));
        if (!std::regex_search(code, kRegistration)) continue;
        // The name literal sits on the call line or (function-local static
        // idiom, clang-format wrapped) on the next one. Calls passing a
        // computed name are not checkable mechanically and are skipped.
        std::smatch m;
        std::size_t literal_line = i;
        std::string literal;
        if (std::regex_search(code, m, kLiteral)) {
          literal = m[1];
        } else if (code.find(';') == std::string::npos && i + 1 < lines.size()) {
          // Wrapped call: the statement continues, so the name literal may sit
          // on the following line. A call line ending the statement with a
          // variable name (registry pass-throughs) is skipped instead.
          const std::string next(CodeText(lines[i + 1]));
          if (std::regex_search(next, m, kLiteral)) {
            literal = m[1];
            literal_line = i + 1;
          }
        }
        if (literal.empty() || Suppressed(lines[literal_line], kCheck)) {
          continue;
        }
        if (!std::regex_match(literal, kScheme)) {
          out->push_back(
              {kCheck, file, literal_line + 1,
               "metric name '" + literal +
                   "' violates the rdfcube_<module>_<name>_<unit> scheme "
                   "(lowercase, >= 4 underscore-separated tokens)"});
        }
      }
    }
  }
}

}  // namespace

std::vector<Violation> RunAllChecks(const std::string& root) {
  std::vector<Violation> out;
  std::error_code ec;
  if (!fs::is_directory(fs::path(root) / "src", ec)) {
    out.push_back({"lint", root, 0, "no src/ directory under lint root"});
    return out;
  }
  const fs::path r(root);
  CheckNoThrow(r, &out);
  CheckStdFunctionCallbacks(r, &out);
  CheckUmbrellaSync(r, &out);
  CheckDoxygenPublic(r, &out);
  CheckParses(r, &out);
  CheckBareStopwatch(r, &out);
  CheckLockAnnotations(r, &out);
  CheckObsShadowing(r, &out);
  CheckMetricNames(r, &out);
  std::sort(out.begin(), out.end(), [](const Violation& a, const Violation& b) {
    return std::tie(a.file, a.line, a.check) <
           std::tie(b.file, b.line, b.check);
  });
  return out;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << v.file;
  if (v.line != 0) os << ":" << v.line;
  os << ": [" << v.check << "] " << v.message;
  return os.str();
}

}  // namespace lint
}  // namespace rdfcube
