// rdfcube_lint: mechanical enforcement of the repo invariants that CLAUDE.md
// records as prose. Deliberately no libclang dependency, so the checker
// builds everywhere the library does. All checks run on the shared tokenizer
// pass (tools/source_text.h): every file is read and comment/string-stripped
// exactly once, so a `throw` in a string literal or a `#include` in a comment
// can never fire a check.
//
// Lexical checks (names are what `lint:allow(<name>)` suppresses on a line):
//   no-throw              no `throw` under src/base, src/core or src/util:
//                         those are hot paths, errors travel as
//                         Status/Result.
//   std-function-callback no generic (template) lambdas in src/sparql or
//                         src/rules: recursive evaluators must take
//                         std::function callbacks or nested NOT EXISTS
//                         explodes template instantiation and OOMs gcc.
//   umbrella-sync         every header under src/ is either included by
//                         src/rdfcube/rdfcube.h or carries an
//                         "rdfcube:internal" marker near its top.
//   doxygen-public        every top-level class/struct definition in a
//                         public header has a Doxygen /// comment.
//   checked-parse         no std::sto* / atoi / atof under src or tools:
//                         they throw (or silently return 0) on malformed
//                         input; use util/string_util ParseDouble/ParseU64.
//   bare-stopwatch        no raw Stopwatch in bench/ harnesses (bench_util
//                         excepted: it is the harness): phase timing goes
//                         through obs::TraceSpan so it lands in the
//                         BENCH_*.json phase breakdown.
//   lock-annotation       every std::mutex / std::shared_mutex /
//                         std::condition_variable data member carries a
//                         thread-safety annotation from
//                         base/thread_annotations.h (use rdfcube::Mutex for
//                         lockables so clang's -Wthread-safety sees them;
//                         pair condvars via RDFCUBE_CONDVAR_PAIRED_WITH).
//   obs-shadowing         no local variable named `obs`: it hides namespace
//                         rdfcube::obs, breaking obs::Counter/obs::TraceSpan
//                         instrumentation in that scope (alias
//                         `namespace obx = ::rdfcube::obs;` where a
//                         parameter already uses the name).
//   metric-name           metric registration literals follow the
//                         rdfcube_<module>_<name>_<unit> scheme (lowercase,
//                         >= 4 underscore-separated tokens), so dashboards
//                         can group by module mechanically.
//   no-raw-stderr         no direct stderr / std::cerr use under src/ or in
//                         tools/rdfcube_serverd.cc: diagnostics go through
//                         obs::Log (structured, leveled, rate-limited;
//                         DESIGN.md §5d) so operators get one parseable
//                         stream. The logger's own terminal sink carries the
//                         sanctioned same-line lint:allow.
//   checked-value         dataflow-lite: `.value()` on a call-chain result
//                         (`Find(x).value()`) or on a local declared
//                         Result<T>/optional<T>, and `*opt` dereferences of
//                         such locals, with no guarding ok()/has_value() in
//                         the enclosing statement or a preceding line of the
//                         same block. Suppress with the invariant as a
//                         one-line comment: `// lint:allow(checked-value):
//                         <why the access cannot fail>`.
//
// Architecture checks (tools/deps, shared with rdfcube_deps — see
// deps_analysis.h for semantics): layer-dag, include-cycle, iwyu-direct.
// The layer-dag check is skipped when tools/layers.txt is absent; the
// standalone rdfcube_deps gate treats a missing manifest as a failure.
//
// Call-graph checks (tools/callgraph, DESIGN.md §5g; run over src/ only,
// where kernels live and TU-visibility linking is meaningful):
//   hot-path-alloc        an RDFCUBE_HOT function reaches — transitively,
//                         across TUs — a heap allocation (new/malloc/
//                         make_unique/to_string, or container growth with no
//                         reserve() in the growing function). The finding
//                         carries the witness chain; fix by hoisting the
//                         allocation, pre-reserving, or marking the slow-path
//                         callee RDFCUBE_COLD.
//   hot-path-lock         an RDFCUBE_HOT function reaches a Mutex
//                         acquisition; pin shared state before entering the
//                         kernel instead.
//   no-throw-transitive   a src/base, src/core or src/util function calls —
//                         transitively — into a `throw` defined elsewhere
//                         (the lexical no-throw check covers the throw
//                         statement itself; this covers reaching one).
//   unbounded-recursion   a src/sparql or src/rules function sits in a
//                         direct-call cycle and its parameter list carries no
//                         recursion bound (depth/budget/fuel/limit/
//                         remaining); thread an explicit bound like
//                         Evaluator::EvalGroup's `depth`.
//   untrusted-size-sink   a function reachable from an RDFCUBE_TAINT_SOURCE
//                         decoder (forward, caller->callee; barriers stop
//                         propagation — base/untrusted.h, DESIGN.md §5h)
//                         contains a sized sink (resize/reserve/assign,
//                         new T[n], memcpy-family, arithmetic subscript) but
//                         no limit-shaped comparison in its body. Anchors at
//                         the sink line; fix by clamping against a named
//                         limit / Remaining() before the sink.
//   unchecked-size-arith  a tainted function computes a sink size with
//                         identifier arithmetic (`resize(a * b)`) and never
//                         calls util/safe_math CheckedAdd/CheckedMul — the
//                         product can wrap before any bounds check.
//   missing-limit-clamp   an RDFCUBE_TAINT_SOURCE function whose whole
//                         barrier-free call closure contains no limit-shaped
//                         comparison at all: the decoder trusts every length
//                         field it reads. Anchors at the definition line.
//   lock-order-cycle      the observed lock-order graph (edge A -> B when B
//                         is acquired — transitively, across TUs — while A
//                         is held) has a cycle or self-loop (potential ABBA
//                         deadlock / double lock), or an observed nesting is
//                         not declared in tools/lock_order.txt, or the
//                         declarations themselves form a cycle (DESIGN.md
//                         §5i). Anchors at the acquiring call/decl line.
//   blocking-under-lock   an RDFCUBE_BLOCKING primitive (base/blocking.h:
//                         socket/file I/O, ThreadPool waits, sleeps, condvar
//                         waits on a *different* mutex) is reachable while a
//                         Mutex is held; move the wait outside the critical
//                         section. MutexLock::Wait on the lock's own mutex
//                         is the sanctioned exception.
//   callback-under-lock   a std::function invocation or virtual dispatch is
//                         reachable while a Mutex is held — arbitrary user
//                         code under a lock can stall or re-enter and
//                         deadlock it. Fix with copy-then-release (snapshot
//                         under the lock, invoke outside, as Logger::Log
//                         does) or suppress on the definition line when the
//                         callee set is closed and lock-free.
//
// Walk roots: src/ and tools/ and bench/ (per-check subsets documented
// above; bench/ is included so harness code obeys checked-parse and the
// concurrency lints too).

#ifndef RDFCUBE_TOOLS_LINT_CHECKS_H_
#define RDFCUBE_TOOLS_LINT_CHECKS_H_

#include <string>
#include <vector>

namespace rdfcube {
namespace lint {

/// \brief One finding: which check fired, where, and why.
struct Violation {
  std::string check;    ///< Check name, e.g. "no-throw".
  std::string file;     ///< Path relative to the linted root.
  std::size_t line = 0; ///< 1-based; 0 for whole-file findings.
  std::string message;

  bool operator==(const Violation& o) const {
    return check == o.check && file == o.file && line == o.line;
  }
};

/// Runs every check over the tree rooted at `root` (the repo root: the
/// directory containing src/ and tools/). Returns all findings sorted by
/// (file, line). A missing src/ directory yields a whole-tree violation
/// rather than a silent pass.
std::vector<Violation> RunAllChecks(const std::string& root);

/// Formats `v` as "file:line: [check] message" for terminal output.
std::string FormatViolation(const Violation& v);

/// Formats `violations` as a JSON array of {file, line, check, message}
/// objects (the `rdfcube_lint --format=json` schema; sorted as given).
std::string ViolationsToJson(const std::vector<Violation>& violations);

/// Formats `violations` as a SARIF 2.1.0 log (one run, driver rdfcube_lint,
/// every finding level "error") for code-scanning UIs
/// (`rdfcube_lint --format=sarif`). Whole-file findings (line 0) carry no
/// region, per the SARIF requirement that startLine be >= 1.
std::string ViolationsToSarif(const std::vector<Violation>& violations);

}  // namespace lint
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_LINT_CHECKS_H_
