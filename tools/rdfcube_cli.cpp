// rdfcube command-line tool: validate, analyze and relate RDF Data Cube
// files without writing C++.
//
//   rdfcube_cli stats    <file.ttl> [--report]   corpus overview; --report
//                                               additionally runs the engine
//                                               and prints the observability
//                                               run report (phases, metrics)
//   rdfcube_cli validate <file.ttl>             QB well-formedness report
//   rdfcube_cli relate   <file.ttl> [options]   compute relationships
//       --method=baseline|clustering|masking|hybrid  (default masking)
//       --types=full,partial,compl              (default all)
//       --out=<relationships.nt>                materialize as RDF
//       --timeout=<seconds>
//   rdfcube_cli skyline  <file.ttl>             containment skyline IRIs
//   rdfcube_cli explore  <file.ttl> <obs-iri>   neighbours of one observation
//   rdfcube_cli rollup   <file.ttl> <dim-iri>=<code> [...]
//                                               aggregate the contained
//                                               observations at a coordinate
//   rdfcube_cli serve    <file.ttl> [--port=N --workers=N --queue=N]
//                                               run a relationship server
//                                               until SIGINT/SIGTERM
//   rdfcube_cli query    <host:port> <op> [obs-id] [--min-degree=D]
//                                               [--limit=N]   query a server
//       op: ping|containers|contained|complements|partial|scan|stats

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/aggregate.h"
#include "core/explorer.h"
#include "core/relationship_rdf.h"
#include "rdfcube/rdfcube.h"
#include "util/string_util.h"

using namespace rdfcube;

// Several commands name an ObservationSet local `obs`, which shadows the
// rdfcube::obs namespace; alias it so the observability types stay reachable.
namespace obx = rdfcube::obs;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<qb::Corpus> LoadFile(const std::string& path) {
  rdf::TripleStore store;
  RDFCUBE_RETURN_IF_ERROR(rdf::ParseTurtleFile(path, &store));
  return qb::LoadCorpusFromRdf(store);
}

int CmdStats(const std::string& path, const std::vector<std::string>& args) {
  bool want_report = false;
  for (const std::string& arg : args) {
    if (arg == "--report") {
      want_report = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 1;
    }
  }
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  const qb::ObservationSet& observations = *corpus->observations;
  const qb::CubeSpace& space = *corpus->space;
  std::printf("observations: %zu\n", observations.size());
  std::printf("datasets:     %zu\n", observations.num_datasets());
  for (qb::DatasetId d = 0; d < observations.num_datasets(); ++d) {
    std::printf("  %-40s %zu observations\n", observations.dataset(d).iri.c_str(),
                observations.dataset(d).observations.size());
  }
  std::printf("dimensions:   %zu\n", space.num_dimensions());
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    std::printf("  %-40s %zu codes, depth %u\n",
                space.dimension_iri(d).c_str(), space.code_list(d).size(),
                space.code_list(d).max_level());
  }
  std::printf("measures:     %zu\n", space.num_measures());
  const core::Lattice lattice(observations);
  std::printf("lattice:      %zu populated cubes (%.4f per observation)\n",
              lattice.num_cubes(),
              observations.size() ? static_cast<double>(lattice.num_cubes()) /
                               static_cast<double>(observations.size())
                         : 0.0);
  if (!want_report) return 0;

  // --report: run the default engine under the observability layer and
  // print the merged run report (phase timings, engine stats, metrics).
  obx::MetricsRegistry::Global().ResetAll();
  obx::TraceCollector::Global().Enable();
  core::EngineReport engine_report;
  uint64_t root_id = 0;
  {
    obx::TraceSpan root("cli/stats");
    root_id = root.id();
    core::CountingSink sink;
    const core::EngineOptions options;
    const Status st =
        core::ComputeRelationships(observations, options, &sink, &engine_report);
    if (!st.ok()) return Fail(st);
  }
  obx::TraceCollector::Global().Disable();
  obx::RunReport run_report("cli_stats");
  core::FillRunReport(engine_report, &run_report);
  run_report.CaptureMetrics();
  run_report.CapturePhases(root_id);
  std::printf("\n%s", run_report.ToText().c_str());
  return 0;
}

int CmdValidate(const std::string& path) {
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  const qb::ValidationReport report = qb::ValidateCorpus(*corpus);
  std::fputs(qb::FormatReport(report).c_str(), stdout);
  return report.ok() ? 0 : 2;
}

int CmdRelate(const std::string& path, const std::vector<std::string>& args) {
  core::EngineOptions options;
  std::string out_path;
  for (const std::string& arg : args) {
    if (StartsWith(arg, "--method=")) {
      const std::string m = arg.substr(9);
      if (m == "baseline") {
        options.method = core::Method::kBaseline;
      } else if (m == "clustering") {
        options.method = core::Method::kClustering;
      } else if (m == "masking") {
        options.method = core::Method::kCubeMasking;
      } else if (m == "hybrid") {
        options.method = core::Method::kHybrid;
      } else {
        std::fprintf(stderr, "unknown method: %s\n", m.c_str());
        return 1;
      }
    } else if (StartsWith(arg, "--types=")) {
      options.selector = core::RelationshipSelector{false, false, false, false};
      for (const std::string& t : Split(arg.substr(8), ',')) {
        if (t == "full") {
          options.selector.full_containment = true;
        } else if (t == "partial") {
          options.selector.partial_containment = true;
        } else if (t == "compl") {
          options.selector.complementarity = true;
        } else {
          std::fprintf(stderr, "unknown relationship type: %s\n", t.c_str());
          return 1;
        }
      }
    } else if (StartsWith(arg, "--out=")) {
      out_path = arg.substr(6);
    } else if (StartsWith(arg, "--timeout=")) {
      Result<double> seconds = ParseDouble(arg.substr(10));
      if (!seconds.ok() || seconds.value() < 0.0) {
        std::fprintf(stderr, "--timeout expects a non-negative number: %s\n",
                     arg.substr(10).c_str());
        return 1;
      }
      options.deadline = rdfcube::Deadline(seconds.value());
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 1;
    }
  }
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  const qb::ObservationSet& observations = *corpus->observations;

  core::EngineReport report;
  Status st;
  if (out_path.empty()) {
    core::CountingSink sink;
    st = core::ComputeRelationships(observations, options, &sink, &report);
    if (!st.ok()) return Fail(st);
    std::printf("full containment:    %zu\n", sink.full());
    std::printf("partial containment: %zu\n", sink.partial());
    std::printf("complementarity:     %zu\n", sink.complementary());
  } else {
    rdf::TripleStore out_store;
    core::RdfMaterializingSink sink(&observations, &out_store);
    st = core::ComputeRelationships(observations, options, &sink, &report);
    if (!st.ok()) return Fail(st);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << rdf::WriteNTriples(out_store);
    std::printf("materialized %zu triples to %s\n", sink.triples_written(),
                out_path.c_str());
  }
  std::printf("method: %s, %.3f s\n", core::MethodName(options.method),
              report.elapsed_seconds);
  return 0;
}

int CmdSkyline(const std::string& path) {
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  const qb::ObservationSet& observations = *corpus->observations;
  const core::Lattice lattice(observations);
  const auto skyline = core::ComputeSkyline(observations, lattice);
  for (qb::ObsId id : skyline) {
    std::printf("%s\n", observations.obs(id).iri.c_str());
  }
  std::fprintf(stderr, "%zu of %zu observations on the skyline\n",
               skyline.size(), observations.size());
  return 0;
}

int CmdExplore(const std::string& path, const std::string& obs_iri) {
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  const qb::ObservationSet& observations = *corpus->observations;
  qb::ObsId id = 0;
  bool found = false;
  for (qb::ObsId i = 0; i < observations.size(); ++i) {
    if (observations.obs(i).iri == obs_iri) {
      id = i;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "observation not found: %s\n", obs_iri.c_str());
    return 1;
  }
  const core::CubeExplorer explorer(&observations);
  std::printf("containers (roll-up):\n");
  for (qb::ObsId o : explorer.Containers(id)) {
    std::printf("  %s\n", observations.obs(o).iri.c_str());
  }
  std::printf("contained (drill-down):\n");
  for (qb::ObsId o : explorer.ContainedBy(id)) {
    std::printf("  %s\n", observations.obs(o).iri.c_str());
  }
  std::printf("complements:\n");
  for (qb::ObsId o : explorer.Complements(id)) {
    std::printf("  %s\n", observations.obs(o).iri.c_str());
  }
  std::printf("partially contains (degree >= 0.5):\n");
  for (const auto& match : explorer.PartiallyContained(id, 0.5)) {
    std::printf("  %s (%.2f)\n", observations.obs(match.other).iri.c_str(),
                match.degree);
  }
  return 0;
}

int CmdRollup(const std::string& path, const std::vector<std::string>& args) {
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  const qb::ObservationSet& observations = *corpus->observations;
  const qb::CubeSpace& space = *corpus->space;

  std::vector<std::pair<qb::DimId, hierarchy::CodeId>> target;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "expected <dim-iri>=<code>, got %s\n", arg.c_str());
      return 1;
    }
    auto dim = space.FindDimension(arg.substr(0, eq));
    if (!dim.has_value()) {
      std::fprintf(stderr, "unknown dimension: %s\n",
                   arg.substr(0, eq).c_str());
      return 1;
    }
    auto code = space.code_list(*dim).Find(arg.substr(eq + 1));
    if (!code.has_value()) {
      std::fprintf(stderr, "unknown code: %s\n", arg.substr(eq + 1).c_str());
      return 1;
    }
    target.emplace_back(*dim, *code);
  }

  const core::Lattice lattice(observations);
  auto result = core::RollUp(observations, lattice, target);
  if (!result.ok()) return Fail(result.status());
  std::printf("coordinate:");
  for (qb::DimId d = 0; d < space.num_dimensions(); ++d) {
    std::printf(" %s",
                std::string(IriLocalName(
                    space.code_list(d).name(result->coordinate[d]))).c_str());
  }
  std::printf("\ncontained observations: %zu\n", result->contained.size());
  for (const auto& m : result->measures) {
    std::printf("  sum(%s) = %g  (%zu contributors)\n",
                space.measure_iri(m.measure).c_str(), m.value,
                m.contributors);
  }
  return 0;
}

volatile sig_atomic_t g_serve_stop = 0;

void OnServeSignal(int) { g_serve_stop = 1; }

int CmdServe(const std::string& path, const std::vector<std::string>& args) {
  server::ServerOptions options;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    Result<uint64_t> u64 =
        eq == std::string::npos
            ? Result<uint64_t>(Status::InvalidArgument("no value"))
            : ParseU64(arg.substr(eq + 1));
    if (key == "--port" && u64.ok()) {
      options.port = static_cast<uint16_t>(u64.value());
    } else if (key == "--workers" && u64.ok()) {
      options.num_workers = static_cast<std::size_t>(u64.value());
    } else if (key == "--queue" && u64.ok()) {
      options.max_queue = static_cast<std::size_t>(u64.value());
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 1;
    }
  }
  auto corpus = LoadFile(path);
  if (!corpus.ok()) return Fail(corpus.status());
  core::RelationshipSnapshot::BuildOptions build;
  build.version = 1;
  auto snap =
      core::RelationshipSnapshot::Build(std::move(corpus).value(), build);
  if (!snap.ok()) return Fail(snap.status());

  server::Server srv(options);
  const Status started = srv.Start(std::move(snap).value());
  if (!started.ok()) return Fail(started);
  std::printf("serving on port %u\n", srv.port());
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = OnServeSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  srv.Stop();
  std::printf("drained: %llu requests, %llu shed\n",
              static_cast<unsigned long long>(srv.requests_total()),
              static_cast<unsigned long long>(srv.shed_total()));
  return 0;
}

int CmdQuery(const std::string& hostport,
             const std::vector<std::string>& args) {
  if (args.empty()) {
    std::fputs(
        "usage: rdfcube_cli query <host:port> "
        "<ping|containers|contained|complements|partial|scan|stats|"
        "metrics|slowlog|tracez> "
        "[obs-id] [--min-degree=D] [--limit=N]\n"
        "(tracez: --limit=N is the capture window in ms, default 100)\n",
        stderr);
    return 1;
  }
  server::ClientOptions options;
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "expected <host:port>, got %s\n", hostport.c_str());
    return 1;
  }
  options.host = hostport.substr(0, colon);
  Result<uint64_t> port = ParseU64(hostport.substr(colon + 1));
  if (!port.ok()) return Fail(port.status());
  options.port = static_cast<uint16_t>(port.value());

  const std::string op = args[0];
  qb::ObsId target = 0;
  double min_degree = 0.0;
  uint32_t limit = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--min-degree=", 0) == 0) {
      Result<double> d = ParseDouble(arg.substr(13));
      if (!d.ok()) return Fail(d.status());
      min_degree = d.value();
    } else if (arg.rfind("--limit=", 0) == 0) {
      Result<uint64_t> n = ParseU64(arg.substr(8));
      if (!n.ok()) return Fail(n.status());
      limit = static_cast<uint32_t>(n.value());
    } else {
      Result<uint64_t> id = ParseU64(arg);
      if (!id.ok()) return Fail(id.status());
      target = static_cast<qb::ObsId>(id.value());
    }
  }

  server::Client client(options);
  if (op == "ping") {
    auto version = client.Ping();
    if (!version.ok()) return Fail(version.status());
    std::printf("ok, snapshot v%llu\n",
                static_cast<unsigned long long>(version.value()));
    return 0;
  }
  if (op == "containers" || op == "contained" || op == "complements") {
    auto ids = op == "containers"  ? client.Containers(target)
               : op == "contained" ? client.Contained(target)
                                   : client.Complements(target);
    if (!ids.ok()) return Fail(ids.status());
    for (qb::ObsId id : ids.value()) std::printf("%u\n", id);
    std::printf("(%zu results)\n", ids.value().size());
    return 0;
  }
  if (op == "partial") {
    auto matches = client.Partial(target, min_degree);
    if (!matches.ok()) return Fail(matches.status());
    for (const auto& [id, degree] : matches.value()) {
      std::printf("%u %.4f\n", id, degree);
    }
    std::printf("(%zu results)\n", matches.value().size());
    return 0;
  }
  if (op == "scan") {
    auto records = client.Scan(limit);
    if (!records.ok()) return Fail(records.status());
    for (const auto& rec : records.value()) {
      std::printf("%c %u %u %.4f\n", static_cast<char>(rec.kind), rec.a,
                  rec.b, rec.degree);
    }
    std::printf("(%zu records)\n", records.value().size());
    return 0;
  }
  if (op == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) return Fail(stats.status());
    const auto& s = stats.value();
    std::printf("observations:     %llu\n"
                "full:             %llu\n"
                "partial:          %llu\n"
                "complementary:    %llu\n"
                "requests:         %llu\n"
                "shed:             %llu\n"
                "deadline expired: %llu\n"
                "reloads:          %llu\n"
                "reload failures:  %llu\n",
                static_cast<unsigned long long>(s[server::kStatsObservations]),
                static_cast<unsigned long long>(s[server::kStatsFull]),
                static_cast<unsigned long long>(s[server::kStatsPartial]),
                static_cast<unsigned long long>(
                    s[server::kStatsComplementary]),
                static_cast<unsigned long long>(s[server::kStatsRequests]),
                static_cast<unsigned long long>(s[server::kStatsShed]),
                static_cast<unsigned long long>(
                    s[server::kStatsDeadlineExpired]),
                static_cast<unsigned long long>(s[server::kStatsReloads]),
                static_cast<unsigned long long>(
                    s[server::kStatsReloadFailures]));
    return 0;
  }
  if (op == "metrics") {
    auto text = client.Metrics();
    if (!text.ok()) return Fail(text.status());
    std::fputs(text.value().c_str(), stdout);
    return 0;
  }
  if (op == "slowlog") {
    auto text = client.Slowlog();
    if (!text.ok()) return Fail(text.status());
    std::printf("%s\n", text.value().c_str());
    return 0;
  }
  if (op == "tracez") {
    auto text = client.TraceDump(limit);
    if (!text.ok()) return Fail(text.status());
    std::printf("%s\n", text.value().c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown query op: %s\n", op.c_str());
  return 1;
}

void Usage() {
  std::fputs(
      "usage: rdfcube_cli <command> <file.ttl|host:port> [args]\n"
      "commands: stats [--report] | validate | relate | skyline | "
      "explore <obs-iri> | rollup |\n"
      "          serve [--port=N --workers=N --queue=N] | "
      "query <op> [obs-id]\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    Usage();
    return 1;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];
  std::vector<std::string> rest;
  for (int i = 3; i < argc; ++i) rest.emplace_back(argv[i]);

  if (command == "serve") return CmdServe(path, rest);
  if (command == "query") return CmdQuery(path, rest);
  if (command == "stats") return CmdStats(path, rest);
  if (command == "validate") return CmdValidate(path);
  if (command == "relate") return CmdRelate(path, rest);
  if (command == "skyline") return CmdSkyline(path);
  if (command == "rollup") return CmdRollup(path, rest);
  if (command == "explore") {
    if (rest.empty()) {
      Usage();
      return 1;
    }
    return CmdExplore(path, rest[0]);
  }
  Usage();
  return 1;
}
