// rdfcube_lint: runs the repo-specific static checks (see lint_checks.h)
// over a source tree and prints every violation.
//
// Usage: rdfcube_lint [root]
//   root: repo root containing src/ and tools/ (default: current directory).
// Exit status: 0 when clean, 1 when violations were found, 2 on usage error.

#include <cstdio>
#include <string>

#include "tools/lint_checks.h"

int main(int argc, char** argv) {
  if (argc == 2 && (std::string(argv[1]) == "--help" ||
                    std::string(argv[1]) == "-h")) {
    std::printf(
        "usage: %s [repo-root]\n"
        "  repo-root: tree containing src/ and tools/ (default: .)\n"
        "Runs the rdfcube-specific static checks; exits 0 when clean,\n"
        "1 when violations were found, 2 on usage error.\n",
        argv[0]);
    return 0;
  }
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [repo-root]\n", argv[0]);
    return 2;
  }
  const std::string root = argc == 2 ? argv[1] : ".";
  const auto violations = rdfcube::lint::RunAllChecks(root);
  for (const auto& v : violations) {
    std::fprintf(stderr, "%s\n", rdfcube::lint::FormatViolation(v).c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "rdfcube_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  std::printf("rdfcube_lint: clean\n");
  return 0;
}
