// rdfcube_lint: runs the repo-specific static checks (see lint_checks.h)
// over a source tree and prints every violation.
//
// Usage: rdfcube_lint [root] [--check=a,b,...] [--format=text|json|sarif]
//   root       repo root containing src/ and tools/ (default: .)
//   --check    run (report) only the named checks, comma-separated — e.g.
//              --check=no-throw,layer-dag. Unknown names are a usage error,
//              so a typo can never silently pass.
//   --format   text (default) prints file:line: [check] message to stderr;
//              json prints a [{file,line,check,message}] array to stdout
//              (CI attaches it as the lint_report.json artifact); sarif
//              prints a SARIF 2.1.0 log to stdout for code-scanning UIs.
// Exit status: 0 when clean, 1 when violations were found, 2 on usage error.

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint_checks.h"

namespace {

// Every check RunAllChecks can emit; --check names must come from this list.
const std::set<std::string> kKnownChecks = {
    "no-throw",       "std-function-callback",
    "umbrella-sync",  "doxygen-public",
    "checked-parse",  "bare-stopwatch",
    "lock-annotation", "obs-shadowing",
    "metric-name",    "checked-value",
    "layer-dag",      "include-cycle",
    "iwyu-direct",    "lint",
    "hot-path-alloc", "hot-path-lock",
    "no-throw-transitive", "unbounded-recursion",
    "untrusted-size-sink", "unchecked-size-arith",
    "missing-limit-clamp",
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [repo-root] [--check=a,b,...] [--format=text|json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::set<std::string> only;
  bool root_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [repo-root] [--check=a,b,...] [--format=text|json|sarif]\n"
          "  repo-root: tree containing src/ and tools/ (default: .)\n"
          "  --check:   report only the named checks (comma-separated)\n"
          "  --format:  text (default, stderr), json or sarif (stdout)\n"
          "Runs the rdfcube-specific static checks (lexical: no-throw,\n"
          "std-function-callback, umbrella-sync, doxygen-public,\n"
          "checked-parse, bare-stopwatch, lock-annotation, obs-shadowing,\n"
          "metric-name, checked-value; architecture: layer-dag,\n"
          "include-cycle, iwyu-direct; call-graph: hot-path-alloc,\n"
          "hot-path-lock, no-throw-transitive, unbounded-recursion;\n"
          "taint gate: untrusted-size-sink, unchecked-size-arith,\n"
          "missing-limit-clamp).\n"
          "Exits 0 when clean, 1 when violations were found, 2 on usage\n"
          "error.\n",
          argv[0]);
      return 0;
    }
    if (arg.rfind("--check=", 0) == 0) {
      std::istringstream names(arg.substr(8));
      std::string name;
      while (std::getline(names, name, ',')) {
        if (name.empty()) continue;
        if (kKnownChecks.count(name) == 0) {
          std::fprintf(stderr, "%s: unknown check '%s'\n", argv[0],
                       name.c_str());
          return 2;
        }
        only.insert(name);
      }
      if (only.empty()) return Usage(argv[0]);
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        return Usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (!root_set) {
      root = arg;
      root_set = true;
    } else {
      return Usage(argv[0]);
    }
  }

  std::vector<rdfcube::lint::Violation> violations =
      rdfcube::lint::RunAllChecks(root);
  if (!only.empty()) {
    violations.erase(
        std::remove_if(violations.begin(), violations.end(),
                       [&only](const rdfcube::lint::Violation& v) {
                         return only.count(v.check) == 0;
                       }),
        violations.end());
  }

  if (format == "json") {
    std::fputs(rdfcube::lint::ViolationsToJson(violations).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(rdfcube::lint::ViolationsToSarif(violations).c_str(), stdout);
  } else {
    for (const auto& v : violations) {
      std::fprintf(stderr, "%s\n", rdfcube::lint::FormatViolation(v).c_str());
    }
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "rdfcube_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  if (format == "text") std::printf("rdfcube_lint: clean\n");
  return 0;
}
