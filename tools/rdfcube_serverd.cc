// rdfcube_serverd: the long-lived relationship server daemon.
//
//   rdfcube_serverd <corpus.(ttl|bin)> [options]
//       --port=<n>            listen port (default 0 = ephemeral; the bound
//                             port is printed as "serving on port <n>")
//       --workers=<n>         worker threads (default 2)
//       --queue=<n>           admission queue capacity (default 64)
//       --retry-after-ms=<n>  backoff hint on shed responses (default 50)
//       --default-deadline=<seconds>  deadline when a request asks for none
//       --max-deadline=<seconds>      clamp on client-requested deadlines
//       --build-deadline=<seconds>    budget for the initial snapshot build
//       --slowlog=<n>         slowlog ring capacity (default 64)
//       --log-json            emit JSON log lines instead of key=value text
//
// SIGINT/SIGTERM drain and exit; SIGHUP re-reads the corpus file and swaps
// the snapshot copy-on-write (a failed reload keeps serving the last-good
// snapshot — watch for "reload failed" log lines). All diagnostics go
// through obs::Log (structured, rate-limited; DESIGN.md §5d); only the
// machine-parsed "serving on port <n>" line stays on stdout.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "rdfcube/rdfcube.h"

using namespace rdfcube;

namespace {

volatile sig_atomic_t g_stop = 0;
volatile sig_atomic_t g_reload = 0;

void OnStopSignal(int) { g_stop = 1; }
void OnReloadSignal(int) { g_reload = 1; }

int Fail(const Status& status) {
  obs::LogError("serverd", "fatal", {obs::Field("status", status.ToString())});
  return 1;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Result<qb::Corpus> LoadCorpus(const std::string& path) {
  if (EndsWith(path, ".bin")) return qb::LoadCorpusBinary(path);
  rdf::TripleStore store;
  RDFCUBE_RETURN_IF_ERROR(rdf::ParseTurtleFile(path, &store));
  return qb::LoadCorpusFromRdf(store);
}

void Usage() {
  // Usage text is CLI output, not logging: it stays on raw stderr.
  std::fputs(
      "usage: rdfcube_serverd <corpus.(ttl|bin)> [--port=N] [--workers=N]\n"
      "       [--queue=N] [--retry-after-ms=N] [--default-deadline=S]\n"
      "       [--max-deadline=S] [--build-deadline=S] [--slowlog=N]\n"
      "       [--log-json]\n",
      stderr);  // lint:allow(no-raw-stderr)
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string path = argv[1];
  server::ServerOptions options;
  double build_deadline_seconds = 0.0;  // 0 = unlimited
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    // Plain pre-initialized locals: gcc-12 trips maybe-uninitialized on the
    // Result<T> optional payload otherwise.
    uint64_t u64_value = 0;
    double dbl_value = 0.0;
    bool has_u64 = false;
    bool has_dbl = false;
    if (!value.empty()) {
      const Result<uint64_t> u64 = ParseU64(value);
      if (u64.ok()) {
        has_u64 = true;
        u64_value = u64.value();
      }
      const Result<double> dbl = ParseDouble(value);
      if (dbl.ok()) {
        has_dbl = true;
        dbl_value = dbl.value();
      }
    }
    if (key == "--port" && has_u64) {
      options.port = static_cast<uint16_t>(u64_value);
    } else if (key == "--workers" && has_u64) {
      options.num_workers = static_cast<std::size_t>(u64_value);
    } else if (key == "--queue" && has_u64) {
      options.max_queue = static_cast<std::size_t>(u64_value);
    } else if (key == "--retry-after-ms" && has_u64) {
      options.retry_after_ms = static_cast<uint32_t>(u64_value);
    } else if (key == "--default-deadline" && has_dbl) {
      options.default_deadline_seconds = dbl_value;
    } else if (key == "--max-deadline" && has_dbl) {
      options.max_deadline_seconds = dbl_value;
    } else if (key == "--build-deadline" && has_dbl) {
      build_deadline_seconds = dbl_value;
    } else if (key == "--slowlog" && has_u64) {
      options.slowlog_capacity = static_cast<std::size_t>(u64_value);
    } else if (key == "--log-json") {
      obs::Logger::Global().SetJsonLines(true);
    } else {
      obs::LogError("serverd", "bad option", {obs::Field("arg", arg)});
      Usage();
      return 1;
    }
  }

  Result<qb::Corpus> corpus = LoadCorpus(path);
  if (!corpus.ok()) return Fail(corpus.status());

  core::RelationshipSnapshot::BuildOptions build;
  build.version = 1;
  if (build_deadline_seconds > 0.0) {
    build.deadline = Deadline(build_deadline_seconds);
  }
  Result<server::SnapshotPtr> snap =
      core::RelationshipSnapshot::Build(std::move(corpus).value(), build);
  if (!snap.ok()) return Fail(snap.status());
  obs::LogInfo("serverd", "snapshot built",
               {obs::Field("version", snap.value()->version()),
                obs::Field("observations",
                           static_cast<uint64_t>(
                               snap.value()->num_observations())),
                obs::Field("full",
                           static_cast<uint64_t>(snap.value()->num_full())),
                obs::Field("partial",
                           static_cast<uint64_t>(snap.value()->num_partial())),
                obs::Field("complementary",
                           static_cast<uint64_t>(
                               snap.value()->num_complementary()))});

  server::Server srv(options);
  const Status started = srv.Start(std::move(snap).value());
  if (!started.ok()) return Fail(started);
  std::printf("serving on port %u\n", srv.port());
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = OnStopSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = OnReloadSignal;
  sigaction(SIGHUP, &sa, nullptr);

  while (g_stop == 0) {
    if (g_reload != 0) {
      g_reload = 0;
      Result<qb::Corpus> fresh = LoadCorpus(path);
      Status reloaded =
          fresh.ok() ? srv.Reload(std::move(fresh).value(),
                                  build_deadline_seconds > 0.0
                                      ? Deadline(build_deadline_seconds)
                                      : Deadline())
                     : fresh.status();
      if (reloaded.ok()) {
        obs::LogInfo("serverd", "reloaded",
                     {obs::Field("version",
                                 srv.store().Current()->version())});
      } else {
        obs::LogWarn(
            "serverd", "reload failed; keeping last-good snapshot",
            {obs::Field("status", reloaded.ToString()),
             obs::Field("failures", srv.store().reload_failures())});
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  obs::LogInfo("serverd", "draining");
  srv.Stop();
  obs::LogInfo("serverd", "drained",
               {obs::Field("requests", srv.requests_total()),
                obs::Field("shed", srv.shed_total()),
                obs::Field("deadline_expired", srv.deadline_expired_total())});
  return 0;
}
