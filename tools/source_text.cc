#include "tools/source_text.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace rdfcube {
namespace lint {

namespace {

// Splits `s` on '\n', dropping a trailing '\r' per line.
std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string line;
  for (char c : s) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  lines.push_back(line);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

SourceFile StripSource(const std::string& content, std::string path) {
  // The three output streams mirror the input byte-for-byte except that
  // stripped spans become spaces; newlines always pass through, so line and
  // column numbers agree across all views.
  std::string text;
  std::string code;
  text.reserve(content.size());
  code.reserve(content.size());

  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kNormal;
  bool at_line_start = true;   // only whitespace seen on this line so far
  bool in_directive = false;   // this logical line is a preprocessor directive
  char prev_code = '\0';       // last non-space char emitted to `code`
  std::string raw_delim;       // active raw-string delimiter, e.g. "delim"

  const std::size_t n = content.size();
  for (std::size_t i = 0; i < n; ++i) {
    const char c = content[i];

    if (c == '\n') {
      // A backslash-continued directive keeps directive mode on the next line.
      std::size_t j = i;
      bool continued = false;
      while (j > 0) {
        const char p = content[j - 1];
        if (p == '\\') {
          continued = true;
          break;
        }
        if (p == '\r') {
          --j;
          continue;
        }
        break;
      }
      if (state == State::kLineComment) state = State::kNormal;
      in_directive = in_directive && continued;
      at_line_start = true;
      text.push_back('\n');
      code.push_back('\n');
      continue;
    }

    switch (state) {
      case State::kNormal: {
        if (at_line_start && c == '#') in_directive = true;
        if (!std::isspace(static_cast<unsigned char>(c))) at_line_start = false;
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          state = State::kLineComment;
          text.append("  ");
          code.append("  ");
          ++i;
          break;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          text.append("  ");
          code.append("  ");
          ++i;
          break;
        }
        if (c == '"') {
          // R"delim( opens a raw string; the R (with optional u8/u/L prefix)
          // must directly precede the quote as the tail of an identifier.
          if (prev_code == 'R' && i >= 1 && content[i - 1] == 'R') {
            std::size_t d = i + 1;
            std::string delim;
            while (d < n && content[d] != '(' && content[d] != '\n' &&
                   delim.size() < 16) {
              delim.push_back(content[d]);
              ++d;
            }
            if (d < n && content[d] == '(') {
              state = State::kRawString;
              raw_delim = delim;
              text.push_back('"');
              code.push_back('"');
              prev_code = '"';
              break;
            }
          }
          state = State::kString;
          text.push_back('"');
          code.push_back('"');
          prev_code = '"';
          break;
        }
        if (c == '\'' && !IsIdentChar(prev_code)) {
          // An apostrophe after an identifier/number char is a digit
          // separator (1'000'000), not a char literal.
          state = State::kChar;
          text.push_back('\'');
          code.push_back('\'');
          prev_code = '\'';
          break;
        }
        text.push_back(c);
        code.push_back(c);
        if (!std::isspace(static_cast<unsigned char>(c))) prev_code = c;
        break;
      }
      case State::kLineComment: {
        text.push_back(' ');
        code.push_back(' ');
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          state = State::kNormal;
          text.append("  ");
          code.append("  ");
          ++i;
        } else {
          text.push_back(' ');
          code.push_back(' ');
        }
        break;
      }
      case State::kString:
      case State::kChar: {
        const char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < n && content[i + 1] != '\n') {
          // Escape sequence: both chars are literal content.
          text.push_back(c);
          text.push_back(content[i + 1]);
          if (in_directive) {
            code.push_back(c);
            code.push_back(content[i + 1]);
          } else {
            code.append("  ");
          }
          ++i;
          break;
        }
        if (c == close) {
          state = State::kNormal;
          text.push_back(c);
          code.push_back(c);
          prev_code = c;
          break;
        }
        text.push_back(c);
        // Directive lines keep literal contents in `code` too: an #include
        // header-name must stay visible to the include extractor.
        code.push_back(in_directive ? c : ' ');
        break;
      }
      case State::kRawString: {
        // Close on )delim" .
        if (c == ')' && i + raw_delim.size() + 1 < n &&
            content.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            content[i + 1 + raw_delim.size()] == '"') {
          const std::size_t skip = raw_delim.size() + 1;
          text.push_back(')');
          text.append(content, i + 1, skip);
          code.push_back(' ');
          for (std::size_t k = 0; k < skip - 1; ++k) code.push_back(' ');
          code.push_back('"');
          i += skip;
          state = State::kNormal;
          prev_code = '"';
          break;
        }
        text.push_back(c);
        code.push_back(in_directive ? c : ' ');
        break;
      }
    }
  }

  SourceFile out;
  out.path = std::move(path);
  out.raw = SplitLines(content);
  out.text = SplitLines(text);
  out.code = SplitLines(code);
  // An empty file yields one empty line from SplitLines; normalize to none.
  if (content.empty()) {
    out.raw.clear();
    out.text.clear();
    out.code.clear();
  }
  return out;
}

SourceFile LoadSource(const std::filesystem::path& file, std::string rel_path) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    SourceFile out;
    out.path = std::move(rel_path);
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return StripSource(buf.str(), std::move(rel_path));
}

bool LineSuppressed(const SourceFile& file, std::size_t index,
                    const std::string& check) {
  if (index >= file.raw.size()) return false;
  return file.raw[index].find("lint:allow(" + check + ")") !=
         std::string::npos;
}

}  // namespace lint
}  // namespace rdfcube
