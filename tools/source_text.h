// Shared tokenizer pass for the repo's static-analysis tools (rdfcube_lint,
// rdfcube_deps). Each file is read and stripped exactly once; every check then
// works on the stripped views instead of re-deriving "is this a comment?"
// per regex — which is how the old line-regex core produced false positives
// on string literals containing keywords.
//
// Three parallel views, all with identical line counts and column positions
// (stripped spans are blanked with spaces, never deleted):
//   raw   verbatim line text — the only view `lint:allow(...)` suppressions
//         and diagnostics may read (suppressions live in comments, which the
//         other views erase).
//   text  comments stripped, string/char literals kept — for checks that must
//         read literal contents (metric names, include paths).
//   code  comments stripped AND string/char literal contents blanked — for
//         token-class checks (`throw`, type names, call patterns) that must
//         never match inside a literal.
//
// Preprocessor directive lines are detected so `#include "x.h"` keeps its
// header-name in *both* text and code (the header-name is not a runtime
// string literal). Raw strings (R"delim(...)delim"), escape sequences, and
// digit separators (1'000'000 is not a char literal) are handled.

#ifndef RDFCUBE_TOOLS_SOURCE_TEXT_H_
#define RDFCUBE_TOOLS_SOURCE_TEXT_H_

#include <filesystem>
#include <string>
#include <vector>

namespace rdfcube {
namespace lint {

/// \brief One source file, loaded and comment/string-stripped once.
struct SourceFile {
  std::string path;  ///< Root-relative slash path, e.g. "src/core/engine.h".
  std::vector<std::string> raw;   ///< Verbatim lines (trailing CR removed).
  std::vector<std::string> text;  ///< Comments blanked, literals kept.
  std::vector<std::string> code;  ///< Comments and literal contents blanked.

  bool empty() const { return raw.empty(); }
};

/// Tokenizes `content` into the three stripped views. `path` is recorded
/// verbatim for diagnostics.
SourceFile StripSource(const std::string& content, std::string path);

/// Reads `file` from disk and strips it; `rel_path` is the path recorded in
/// the result. An unreadable file yields an empty SourceFile.
SourceFile LoadSource(const std::filesystem::path& file, std::string rel_path);

/// True when raw line `index` (0-based) carries `lint:allow(<check>)`.
bool LineSuppressed(const SourceFile& file, std::size_t index,
                    const std::string& check);

}  // namespace lint
}  // namespace rdfcube

#endif  // RDFCUBE_TOOLS_SOURCE_TEXT_H_
